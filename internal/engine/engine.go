// Package engine is the sharded parallel analysis pipeline: it replays a
// recorded trace — or consumes a live VM event stream — across N CPU cores
// and produces a report set identical to sequential analysis.
//
// Architecture (see also the root doc.go): the engine runs a *tool registry*
// — any number of trace.ToolSpecs, each naming a routing class — over a
// single decode of the event stream, fanned out to N shard workers:
//
//   - The event stream is decoded (or received from the VM) exactly once, on
//     the dispatcher goroutine, and split into per-memory-shard substreams:
//     every event that names a heap block (memory accesses, allocations,
//     frees, client requests) is routed to the shard owning that block
//     (trace.Shard of its BlockID), while synchronisation, segment and
//     thread-lifecycle events are broadcast to all shards.
//   - Block-routed tools (trace.RouteBlock) get one independent instance per
//     shard; pinned tools (trace.RouteBroadcast, trace.RouteSingle) get
//     exactly one instance homed on one shard, with the engine forwarding
//     every block event to the home shards of single-shard tools. Events
//     travel in batches over bounded channels, so a slow shard exerts
//     backpressure on the dispatcher instead of queueing unbounded memory.
//     Instances share nothing and need no locks; each sits behind its own
//     panic-isolating trace.SafeSink, so one buggy tool cannot take down its
//     shard siblings.
//   - Every instance writes to a private report.Collector whose sites are
//     stamped with the global event sequence number of their first
//     occurrence. Close joins the workers, runs end-of-stream passes
//     (trace.Finisher) and merges all collectors deterministically
//     (report.Merge): duplicate sites fold with summed counts and the merged
//     order is the global first-seen order across every tool, so the output
//     does not depend on goroutine scheduling and is byte-identical to what
//     the Sequential pipeline produces from the same stream.
//
// The routing classes and their soundness arguments are documented on
// trace.Routing; every detector package exports a Spec constructor declaring
// its class.
package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Factory builds one detector instance for one shard, writing warnings to
// the shard's private collector.
//
// Deprecated: configure the engine with Options.Tools instead. Factory
// remains as the single-tool shorthand: a non-nil Factory with empty Tools
// is adapted into one block-routed ToolSpec.
type Factory func(col *report.Collector) trace.Sink

// Options configures an Engine (or a Sequential).
type Options struct {
	// Shards is the number of parallel workers (default: GOMAXPROCS).
	Shards int
	// BatchSize is the number of events per dispatch batch (default 512).
	// Batching amortises channel synchronisation across events.
	BatchSize int
	// QueueDepth is the per-shard channel capacity in batches (default 8).
	// Together with BatchSize it bounds the memory between dispatcher and
	// workers and provides backpressure.
	QueueDepth int
	// Tools is the registry: every listed tool runs concurrently over the
	// single decode of the stream, routed per its spec. Names must be
	// unique. Required unless Factory is set.
	Tools []trace.ToolSpec
	// Factory is the deprecated single-tool constructor; see Factory's doc.
	Factory Factory
	// Resolver resolves stacks and blocks at reporting time; it is handed to
	// every instance collector and to the merged result.
	Resolver trace.Resolver
	// Suppressor applies suppression rules in every instance collector.
	Suppressor report.Suppressor
	// Metrics, when non-nil, receives hot-path instrumentation (events
	// dispatched, batches flushed, queue watermarks, snapshot quiesce
	// latency, absorbed tool panics). Several pipelines may share one
	// Metrics. Instrumentation never influences analysis: reports are
	// byte-identical with or without it.
	Metrics *Metrics
	// ToolTime, when true, measures the wall time spent inside each tool
	// instance's event handlers; ToolTimes returns the totals after Close.
	// The measurement brackets every delivery with two clock reads, so it is
	// off by default and meant for attribution runs (perfbench -tooltime),
	// not steady-state production pipelines. Like Metrics, it never changes
	// analysis output.
	ToolTime bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if len(o.Tools) == 0 && o.Factory != nil {
		f := o.Factory
		o.Tools = []trace.ToolSpec{{
			Name:    "detector",
			Routing: trace.RouteBlock,
			Factory: func(col trace.Reporter) trace.Sink { return f(col.(*report.Collector)) },
		}}
	}
	return o
}

// validateTools checks the registry invariants shared by Engine and
// Sequential.
func validateTools(tools []trace.ToolSpec) error {
	if len(tools) == 0 {
		return fmt.Errorf("engine: no tools registered (set Options.Tools)")
	}
	seen := make(map[string]bool, len(tools))
	for _, spec := range tools {
		if spec.Factory == nil {
			return fmt.Errorf("engine: tool %q has no Factory", spec.Name)
		}
		if spec.Name == "" {
			return fmt.Errorf("engine: tool with empty Name")
		}
		if seen[spec.Name] {
			return fmt.Errorf("engine: duplicate tool name %q (give each registered tool a distinct report name)", spec.Name)
		}
		seen[spec.Name] = true
		switch spec.Routing {
		case trace.RouteBlock, trace.RouteBroadcast, trace.RouteSingle:
		default:
			// Rejected here, not just in New's placement switch, so a bad
			// spec fails identically whether or not sharding is enabled.
			return fmt.Errorf("engine: tool %q has unknown routing %d", spec.Name, spec.Routing)
		}
	}
	return nil
}

// Delivery destinations within one shard. A broadcast event addresses both
// groups; a block event addresses the owning shard's block-routed instances
// and, separately, the single-shard instances wherever they are homed.
const (
	dstSharded uint8 = 1 << iota // the shard's block-routed instances
	dstPinned                    // the shard's pinned (broadcast/single) instances
)

// event is one dispatched trace event plus its global sequence number and
// destination groups.
type event struct {
	seq uint64
	dst uint8
	tracelog.Event
}

// batch is one pooled unit of dispatch: a slice of events plus the edge
// arena backing their Segment.In slices. The decoder reuses its own edge
// buffer between events (copy-on-retain), so enqueue copies segment edges
// into the batch's arena; the arena travels with the batch, is read by
// exactly one worker, and is recycled with it. Pooling *batch (rather than
// a bare []event) also keeps the pool itself allocation-free: a pointer in
// an interface does not escape the way a slice header does.
type batch struct {
	ev    []event
	edges []trace.SegmentEdge
}

// addEdges copies a segment event's edges into the batch arena and returns
// the batch-owned slice. Arena growth may move the backing array; slices
// handed out earlier keep pointing at the old array, whose contents are
// already written and never mutated, so they stay valid.
func (b *batch) addEdges(in []trace.SegmentEdge) []trace.SegmentEdge {
	start := len(b.edges)
	b.edges = append(b.edges, in...)
	return b.edges[start:len(b.edges):len(b.edges)]
}

func (b *batch) reset() *batch {
	b.ev = b.ev[:0]
	b.edges = b.edges[:0]
	return b
}

// Engine fans an event stream out to shard workers. It implements
// trace.Sink, so it can be attached to a live VM with AddTool; recorded
// logs go through ReplayLog. After the stream ends, Close joins the workers
// and returns the merged collector. Engine is not safe for concurrent
// dispatch: all events must come from one goroutine, as both the VM and the
// log decoder guarantee.
type Engine struct {
	opt        Options
	shards     []*shard
	insts      []*toolInst // all instances, in (tool, shard) order
	fullShards []int       // shards hosting at least one RouteSingle instance
	active     []int       // shards hosting any instance (broadcast targets)
	hasSharded bool        // any RouteBlock tool registered
	pool       sync.Pool
	seq        uint64
	closed     bool
	merged     *report.Collector
	err        error
	streamErr  error // first mid-stream failure (e.g. a ReplayLog decode error)

	// Instrumentation (nil-gated). metPending counts events dispatched since
	// the last fold into met.EventsDecoded, so the per-event cost is a plain
	// increment; hwm holds the per-shard queue gauges resolved at New.
	met        *Metrics
	metPending int64
	hwm        []*obs.Gauge

	// Snapshot quiesce machinery (see Snapshot): a nil batch sent down a
	// shard channel is the barrier marker; the worker checks in on snapWG and
	// parks on snapGate until the dispatcher has cloned every collector.
	snapWG   sync.WaitGroup
	snapGate chan struct{}
}

// New creates an engine and starts its shard workers.
func New(opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	if err := validateTools(opt.Tools); err != nil {
		return nil, err
	}
	e := &Engine{opt: opt, snapGate: make(chan struct{}, opt.Shards)}
	e.met = opt.Metrics
	e.hwm = shardQueueGauges(opt.Metrics, opt.Shards)
	e.pool.New = func() any { return &batch{ev: make([]event, 0, opt.BatchSize)} }
	e.shards = make([]*shard, opt.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(i, opt, e.newBatch())
		e.shards[i].snapWG = &e.snapWG
		e.shards[i].snapGate = e.snapGate
	}
	// Instantiate the registry: block-routed tools once per shard, pinned
	// tools once each, spread round-robin across shards so several pinned
	// tools do not pile onto one worker.
	pinned := 0
	hasFull := make([]bool, opt.Shards)
	for _, spec := range opt.Tools {
		switch spec.Routing {
		case trace.RouteBlock:
			e.hasSharded = true
			for _, s := range e.shards {
				ti := newToolInst(spec, opt, &s.cur)
				s.sharded = append(s.sharded, ti)
				e.insts = append(e.insts, ti)
			}
		case trace.RouteBroadcast, trace.RouteSingle:
			s := e.shards[pinned%opt.Shards]
			pinned++
			ti := newToolInst(spec, opt, &s.cur)
			if spec.Routing == trace.RouteSingle {
				s.pinnedFull = append(s.pinnedFull, ti)
				hasFull[s.id] = true
			} else {
				s.pinnedBcast = append(s.pinnedBcast, ti)
			}
			e.insts = append(e.insts, ti)
		default:
			return nil, fmt.Errorf("engine: tool %q has unknown routing %d", spec.Name, spec.Routing)
		}
	}
	for i, ok := range hasFull {
		if ok {
			e.fullShards = append(e.fullShards, i)
		}
	}
	// With block-routed tools registered every shard hosts instances; with a
	// pinned-only registry, only home shards do — the rest never need to see
	// an event.
	for _, s := range e.shards {
		if e.hasSharded || len(s.pinnedBcast)+len(s.pinnedFull) > 0 {
			e.active = append(e.active, s.id)
		}
	}
	for _, s := range e.shards {
		go s.run(&e.pool)
	}
	return e, nil
}

// Shards returns the number of shard workers.
func (e *Engine) Shards() int { return len(e.shards) }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() int64 { return int64(e.seq) }

// QueueLoad reports the fullest shard queue as a fraction of its capacity —
// the live backpressure signal behind the ratcheting engine_queue_hwm
// gauges. Reading len() of the batch channels from the dispatching goroutine
// is racy only in the benign direction: a worker draining concurrently makes
// the estimate conservative, never stale-high forever.
func (e *Engine) QueueLoad() float64 {
	var max float64
	for _, s := range e.shards {
		if c := cap(s.ch); c > 0 {
			if l := float64(len(s.ch)) / float64(c); l > max {
				max = l
			}
		}
	}
	return max
}

func (e *Engine) newBatch() *batch {
	return e.pool.Get().(*batch).reset()
}

// dispatch routes one event. Block-carrying events go to the owning shard's
// block-routed instances and to the home shards of single-shard tools;
// everything else is broadcast to all shards for every instance.
// ev.Segment.In is only read during the call (enqueue copies it into each
// destination batch's arena), so the caller — decoder or VM — may reuse the
// slice immediately after dispatch returns.
func (e *Engine) dispatch(ev *tracelog.Event) {
	if e.closed {
		return
	}
	e.seq++
	if e.met != nil {
		e.metPending++
		if e.metPending >= metricsFlushEvery {
			e.met.EventsDecoded.Add(e.metPending)
			e.metPending = 0
		}
	}
	n := len(e.shards)
	var owner int
	switch ev.Op {
	case tracelog.OpAccess:
		owner = trace.Shard(ev.Access.Block, n)
	case tracelog.OpAlloc, tracelog.OpFree:
		owner = trace.Shard(ev.Block.ID, n)
	case tracelog.OpRequest:
		owner = trace.Shard(ev.Request.Block, n)
	default:
		for _, i := range e.active {
			e.enqueue(i, ev, dstSharded|dstPinned)
		}
		return
	}
	if e.hasSharded && len(e.fullShards) == 0 {
		e.enqueue(owner, ev, dstSharded)
		return
	}
	ownerSent := false
	for _, i := range e.fullShards {
		d := dstPinned
		if i == owner && e.hasSharded {
			d |= dstSharded
			ownerSent = true
		}
		e.enqueue(i, ev, d)
	}
	if e.hasSharded && !ownerSent {
		e.enqueue(owner, ev, dstSharded)
	}
}

func (e *Engine) enqueue(i int, ev *tracelog.Event, dst uint8) {
	s := e.shards[i]
	b := s.pending
	b.ev = append(b.ev, event{seq: e.seq, dst: dst, Event: *ev})
	if ev.Op == tracelog.OpSegment {
		// The copied slice header still points at the caller's edge buffer
		// (the decoder's reused scratch, or the VM's event struct); re-point
		// it at a copy in the batch-owned arena before the event crosses the
		// channel.
		b.ev[len(b.ev)-1].Segment.In = b.addEdges(ev.Segment.In)
	}
	if len(b.ev) >= e.opt.BatchSize {
		s.ch <- b
		s.pending = e.newBatch()
		if e.met != nil {
			e.met.BatchesFlushed.Inc()
			e.hwm[i].SetMax(int64(len(s.ch)))
		}
	}
}

// flushMetrics folds the locally-batched event count into the shared
// counter. Called at every snapshot and close boundary so the exported
// series are exact whenever anyone can observe them.
func (e *Engine) flushMetrics() {
	if e.met != nil && e.metPending > 0 {
		e.met.EventsDecoded.Add(e.metPending)
		e.metPending = 0
	}
}

// ReplayLog decodes a recorded binary log once and streams it through the
// shards. It returns the number of events dispatched. Call Close afterwards
// to obtain the merged report.
//
// A decode error (corrupt or truncated log) marks the whole run failed: the
// events dispatched so far analysed only a prefix of the stream, so Close
// will return the error instead of a partial merged report.
func (e *Engine) ReplayLog(r io.Reader) (int64, error) {
	dec := tracelog.NewDecoder(r)
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			return dec.Events(), nil
		}
		if err != nil {
			e.fail(err)
			return dec.Events(), err
		}
		e.dispatch(&ev)
	}
}

// fail records a mid-stream failure: the analysed events are only a prefix of
// the intended stream, so no merged report may be emitted. The first failure
// sticks; Close reports it.
func (e *Engine) fail(err error) {
	if e.streamErr == nil && err != nil {
		e.streamErr = err
	}
}

// ToolName implements trace.Sink.
func (e *Engine) ToolName() string { return "engine" }

// Access implements trace.Sink.
func (e *Engine) Access(a *trace.Access) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAccess, Access: *a})
}

// Acquire implements trace.Sink.
func (e *Engine) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAcquire, Thread: t, Lock: l, LockKind: k, Stack: st})
}

// Release implements trace.Sink.
func (e *Engine) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpRelease, Thread: t, Lock: l, LockKind: k, Stack: st})
}

// Contended implements trace.Sink.
func (e *Engine) Contended(t trace.ThreadID, l trace.LockID, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpContended, Thread: t, Lock: l, Stack: st})
}

// Alloc implements trace.Sink.
func (e *Engine) Alloc(b *trace.Block) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAlloc, Block: *b})
}

// Free implements trace.Sink.
func (e *Engine) Free(b *trace.Block, t trace.ThreadID, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpFree, Block: *b, Thread: t, Stack: st})
}

// Segment implements trace.Sink. No up-front copy: enqueue copies the edge
// slice into each destination batch's arena, so the VM may reuse its slice
// as soon as this returns and the live path stays allocation-free.
func (e *Engine) Segment(ss *trace.SegmentStart) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpSegment, Segment: *ss})
}

// Sync implements trace.Sink.
func (e *Engine) Sync(ev *trace.SyncEvent) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpSync, Sync: *ev})
}

// Request implements trace.Sink.
func (e *Engine) Request(r *trace.Request) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpRequest, Request: *r})
}

// ThreadStart implements trace.Sink.
func (e *Engine) ThreadStart(t, parent trace.ThreadID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpThreadStart, Thread: t, Parent: parent})
}

// ThreadExit implements trace.Sink.
func (e *Engine) ThreadExit(t trace.ThreadID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpThreadExit, Thread: t})
}

var _ trace.Sink = (*Engine)(nil)
