// Package engine is the sharded parallel analysis pipeline: it replays a
// recorded trace — or consumes a live VM event stream — across N CPU cores
// and produces a report set identical to sequential analysis.
//
// Architecture (see also the root doc.go):
//
//   - The event stream is decoded (or received from the VM) exactly once, on
//     the dispatcher goroutine, and split into per-memory-shard substreams:
//     every event that names a heap block (memory accesses, allocations,
//     frees, client requests) is routed to the shard owning that block
//     (trace.Shard of its BlockID), while synchronisation, segment and
//     thread-lifecycle events are broadcast to all shards, so every shard
//     observes the full happens-before structure.
//   - Each shard runs an independent detector instance, built by the
//     configured Factory, on its own worker goroutine. Events travel in
//     batches over bounded channels, so a slow shard exerts backpressure on
//     the dispatcher instead of queueing unbounded memory. Detector state is
//     per-shard by construction — the factory is called once per shard — so
//     workers share nothing and need no locks.
//   - Each shard's warnings accumulate in a private report.Collector whose
//     sites are stamped with the global event sequence number of their first
//     occurrence. Close joins the workers and merges the per-shard
//     collectors deterministically (report.Merge): duplicate sites fold with
//     summed counts and the merged order is the global first-seen order, so
//     the output does not depend on goroutine scheduling and matches what a
//     sequential replay into a single detector would have produced.
//
// The decomposition is sound for detectors whose shadow state is per-block
// and whose warnings arise only from block-carrying events — the lock-set
// and DJIT race detectors both qualify: their thread/lock/segment state is
// derived from broadcast events and therefore evolves identically in every
// shard, while their per-block shadow memory is partitioned. Tools that
// warn from broadcast events themselves (the lock-order deadlock detector)
// must stay on a sequential path.
package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Factory builds one detector instance for one shard, writing warnings to
// the shard's private collector. lockset.Factory and vectorclock.Factory
// return ready-made implementations; use trace.Fanout to run several tools
// per shard.
type Factory func(col *report.Collector) trace.Sink

// Options configures an Engine.
type Options struct {
	// Shards is the number of parallel workers (default: GOMAXPROCS).
	Shards int
	// BatchSize is the number of events per dispatch batch (default 512).
	// Batching amortises channel synchronisation across events.
	BatchSize int
	// QueueDepth is the per-shard channel capacity in batches (default 8).
	// Together with BatchSize it bounds the memory between dispatcher and
	// workers and provides backpressure.
	QueueDepth int
	// Factory builds the per-shard detector. Required.
	Factory Factory
	// Resolver resolves stacks and blocks at reporting time; it is handed to
	// every shard collector and to the merged result.
	Resolver trace.Resolver
	// Suppressor applies suppression rules in every shard collector.
	Suppressor report.Suppressor
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	return o
}

// event is one dispatched trace event plus its global sequence number.
type event struct {
	seq uint64
	tracelog.Event
}

// Engine fans an event stream out to shard workers. It implements
// trace.Sink, so it can be attached to a live VM with AddTool; recorded
// logs go through ReplayLog. After the stream ends, Close joins the workers
// and returns the merged collector. Engine is not safe for concurrent
// dispatch: all events must come from one goroutine, as both the VM and the
// log decoder guarantee.
type Engine struct {
	opt    Options
	shards []*shard
	pool   sync.Pool
	seq    uint64
	closed bool
	merged *report.Collector
	err    error
}

// New creates an engine and starts its shard workers.
func New(opt Options) (*Engine, error) {
	if opt.Factory == nil {
		return nil, fmt.Errorf("engine: Options.Factory is required")
	}
	opt = opt.withDefaults()
	e := &Engine{opt: opt}
	e.pool.New = func() any { return make([]event, 0, opt.BatchSize) }
	e.shards = make([]*shard, opt.Shards)
	for i := range e.shards {
		s := newShard(i, opt, e.newBatch())
		e.shards[i] = s
		go s.run(&e.pool)
	}
	return e, nil
}

// Shards returns the number of shard workers.
func (e *Engine) Shards() int { return len(e.shards) }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() int64 { return int64(e.seq) }

func (e *Engine) newBatch() []event {
	return e.pool.Get().([]event)[:0]
}

// dispatch routes one event: block-carrying events to the owning shard,
// everything else to all shards. ev.Segment.In must not be reused by the
// caller afterwards (the decoder allocates it fresh; the live Sink methods
// copy it).
func (e *Engine) dispatch(ev *tracelog.Event) {
	if e.closed {
		return
	}
	e.seq++
	n := len(e.shards)
	switch ev.Op {
	case tracelog.OpAccess:
		e.enqueue(trace.Shard(ev.Access.Block, n), ev)
	case tracelog.OpAlloc, tracelog.OpFree:
		e.enqueue(trace.Shard(ev.Block.ID, n), ev)
	case tracelog.OpRequest:
		e.enqueue(trace.Shard(ev.Request.Block, n), ev)
	default:
		for i := 0; i < n; i++ {
			e.enqueue(i, ev)
		}
	}
}

func (e *Engine) enqueue(i int, ev *tracelog.Event) {
	s := e.shards[i]
	s.pending = append(s.pending, event{seq: e.seq, Event: *ev})
	if len(s.pending) >= e.opt.BatchSize {
		s.ch <- s.pending
		s.pending = e.newBatch()
	}
}

// ReplayLog decodes a recorded binary log once and streams it through the
// shards. It returns the number of events dispatched. Call Close afterwards
// to obtain the merged report.
func (e *Engine) ReplayLog(r io.Reader) (int64, error) {
	dec := tracelog.NewDecoder(r)
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			return dec.Events(), nil
		}
		if err != nil {
			return dec.Events(), err
		}
		e.dispatch(&ev)
	}
}

// ToolName implements trace.Sink.
func (e *Engine) ToolName() string { return "engine" }

// Access implements trace.Sink.
func (e *Engine) Access(a *trace.Access) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAccess, Access: *a})
}

// Acquire implements trace.Sink.
func (e *Engine) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAcquire, Thread: t, Lock: l, LockKind: k, Stack: st})
}

// Release implements trace.Sink.
func (e *Engine) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpRelease, Thread: t, Lock: l, LockKind: k, Stack: st})
}

// Contended implements trace.Sink.
func (e *Engine) Contended(t trace.ThreadID, l trace.LockID, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpContended, Thread: t, Lock: l, Stack: st})
}

// Alloc implements trace.Sink.
func (e *Engine) Alloc(b *trace.Block) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpAlloc, Block: *b})
}

// Free implements trace.Sink.
func (e *Engine) Free(b *trace.Block, t trace.ThreadID, st trace.StackID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpFree, Block: *b, Thread: t, Stack: st})
}

// Segment implements trace.Sink. The edge slice is copied: the VM may reuse
// it, and the broadcast copies share the new backing array read-only.
func (e *Engine) Segment(ss *trace.SegmentStart) {
	cp := *ss
	cp.In = append([]trace.SegmentEdge(nil), ss.In...)
	e.dispatch(&tracelog.Event{Op: tracelog.OpSegment, Segment: cp})
}

// Sync implements trace.Sink.
func (e *Engine) Sync(ev *trace.SyncEvent) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpSync, Sync: *ev})
}

// Request implements trace.Sink.
func (e *Engine) Request(r *trace.Request) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpRequest, Request: *r})
}

// ThreadStart implements trace.Sink.
func (e *Engine) ThreadStart(t, parent trace.ThreadID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpThreadStart, Thread: t, Parent: parent})
}

// ThreadExit implements trace.Sink.
func (e *Engine) ThreadExit(t trace.ThreadID) {
	e.dispatch(&tracelog.Event{Op: tracelog.OpThreadExit, Thread: t})
}

var _ trace.Sink = (*Engine)(nil)
