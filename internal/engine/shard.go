package engine

import (
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// toolInst is one live tool instance: a sink behind its panic isolator and a
// private collector stamping sites with the owning worker's current global
// sequence number. Block-routed tools have one per shard; pinned tools have
// exactly one, homed on one shard. cur points at the owning worker's
// sequence counter (shard.cur, or Sequential.seq), which the worker updates
// before delivering each event on its own goroutine — the same goroutine the
// collector's sequencer then reads it from.
type toolInst struct {
	name string
	col  *report.Collector
	sink *trace.SafeSink
	cur  *uint64
	ns   int64 // time inside handlers, accumulated when Options.ToolTime is on
}

func newToolInst(spec trace.ToolSpec, opt Options, cur *uint64) *toolInst {
	col := report.NewCollector(opt.Resolver, opt.Suppressor)
	col.SetSequencer(func() uint64 { return *cur })
	// The SafeSink isolates a panicking tool to this one instance: the
	// worker keeps draining its channel and sibling tools on the same
	// shard keep analysing; the panic surfaces as an error from Close.
	ss := trace.NewSafeSink(spec.Factory(col))
	if opt.Metrics != nil {
		ss.OnPanic = opt.Metrics.ToolPanics.Inc
	}
	return &toolInst{
		name: spec.Name,
		col:  col,
		sink: ss,
		cur:  cur,
	}
}

// shard is one worker: a bounded batch channel and the tool instances homed
// here. Everything behind the channel is touched only by the worker
// goroutine until Close has joined it.
type shard struct {
	id          int
	ch          chan *batch
	pending     *batch // dispatcher-side partial batch
	sharded     []*toolInst
	pinnedBcast []*toolInst // RouteBroadcast instances homed here
	pinnedFull  []*toolInst // RouteSingle instances homed here
	cur         uint64      // global sequence of the event being processed
	events      int64
	timed       bool // Options.ToolTime: bracket deliveries with clock reads
	done        chan struct{}

	// Snapshot barrier plumbing, shared across all shards of one Engine: a
	// nil batch on ch is the quiesce marker (see Engine.Snapshot).
	snapWG   *sync.WaitGroup
	snapGate <-chan struct{}
}

func newShard(id int, opt Options, b *batch) *shard {
	return &shard{
		id:      id,
		ch:      make(chan *batch, opt.QueueDepth),
		pending: b,
		timed:   opt.ToolTime,
		done:    make(chan struct{}),
	}
}

// deliverAll hands the event to each instance, optionally attributing the
// handler time to it. The timed branch is kept out of the common path: two
// clock reads per (event, instance) are noticeable, and the flag is an
// explicit attribution request.
func deliverAll(insts []*toolInst, ev *event, timed bool) {
	if !timed {
		for _, ti := range insts {
			ev.Deliver(ti.sink)
		}
		return
	}
	for _, ti := range insts {
		t0 := time.Now()
		ev.Deliver(ti.sink)
		ti.ns += time.Since(t0).Nanoseconds()
	}
}

// blockOp reports whether the opcode names a heap block — the events that
// are partitioned rather than broadcast.
func blockOp(op tracelog.Op) bool {
	switch op {
	case tracelog.OpAccess, tracelog.OpAlloc, tracelog.OpFree, tracelog.OpRequest:
		return true
	}
	return false
}

// run is the worker loop. Each event is delivered to the destination groups
// named by its dst bits: block-routed instances see their partition plus all
// broadcasts; pinned broadcast instances see only non-block events; pinned
// single-shard instances see everything addressed here. Batches go back into
// the pool after processing.
func (s *shard) run(pool *sync.Pool) {
	defer close(s.done)
	for b := range s.ch {
		if b == nil {
			// Snapshot barrier: every batch enqueued before it has been fully
			// delivered (the channel is FIFO). Check in, then park until the
			// dispatcher has cloned the instance collectors. The WaitGroup
			// handoff orders this worker's collector writes before the clone;
			// the gate receive orders the clone before any further delivery.
			s.snapWG.Done()
			<-s.snapGate
			continue
		}
		for i := range b.ev {
			ev := &b.ev[i]
			s.cur = ev.seq
			if ev.dst&dstSharded != 0 {
				deliverAll(s.sharded, ev, s.timed)
			}
			if ev.dst&dstPinned != 0 {
				if !blockOp(ev.Op) {
					deliverAll(s.pinnedBcast, ev, s.timed)
				}
				deliverAll(s.pinnedFull, ev, s.timed)
			}
		}
		s.events += int64(len(b.ev))
		pool.Put(b.reset())
	}
}
