package engine

import (
	"sync"

	"repro/internal/report"
	"repro/internal/trace"
)

// shard is one worker: a bounded batch channel, a detector instance and a
// private collector. Everything behind the channel is touched only by the
// worker goroutine until Close has joined it.
type shard struct {
	id      int
	ch      chan []event
	pending []event // dispatcher-side partial batch
	col     *report.Collector
	sink    *trace.SafeSink
	cur     uint64 // global sequence of the event being processed
	events  int64
	done    chan struct{}
}

func newShard(id int, opt Options, batch []event) *shard {
	s := &shard{
		id:      id,
		ch:      make(chan []event, opt.QueueDepth),
		pending: batch,
		done:    make(chan struct{}),
	}
	s.col = report.NewCollector(opt.Resolver, opt.Suppressor)
	// The detector calls Collector.Add synchronously from Deliver, on this
	// shard's goroutine, so reading cur here is race-free.
	s.col.SetSequencer(func() uint64 { return s.cur })
	// The SafeSink isolates a panicking detector to its shard: the worker
	// keeps draining its channel (preserving backpressure behaviour) and the
	// panic surfaces as an error from Close.
	s.sink = trace.NewSafeSink(opt.Factory(s.col))
	return s
}

// run is the worker loop. Batches go back into the pool after processing.
func (s *shard) run(pool *sync.Pool) {
	defer close(s.done)
	for batch := range s.ch {
		for i := range batch {
			s.cur = batch[i].seq
			batch[i].Deliver(s.sink)
		}
		s.events += int64(len(batch))
		pool.Put(batch[:0]) //nolint:staticcheck // slice reuse is the point
	}
}
