package engine_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/highlevel"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// allToolSpecs is the full registry: three race detectors plus all three
// auxiliary checkers, the acceptance configuration of the routed pipeline.
func allToolSpecs(cfg lockset.Config) []trace.ToolSpec {
	return []trace.ToolSpec{
		lockset.Spec(cfg),
		vectorclock.Spec(vectorclock.DefaultConfig()),
		hybrid.Spec(hybrid.Config{}),
		deadlock.Spec(deadlock.Config{}),
		memcheck.Spec(memcheck.Config{}),
		highlevel.Spec(highlevel.Config{}),
	}
}

// TestEngineMultiToolMatchesSequential is the registry determinism contract:
// for a fixed recorded trace, the engine running ALL tools concurrently with
// 1, 4 and 8 shards produces output byte-identical to the Sequential
// single-pass pipeline — same warnings, same order, same counts — under all
// three paper configurations.
func TestEngineMultiToolMatchesSequential(t *testing.T) {
	log, v := recordSIP(t)
	for name, cfg := range paperConfigs() {
		seq, err := engine.NewSequential(engine.Options{Tools: allToolSpecs(cfg), Resolver: v})
		if err != nil {
			t.Fatalf("%s: NewSequential: %v", name, err)
		}
		seqEvents, err := seq.ReplayLog(bytes.NewReader(log))
		if err != nil {
			t.Fatalf("%s: sequential replay: %v", name, err)
		}
		seqCol, err := seq.Close()
		if err != nil {
			t.Fatalf("%s: sequential close: %v", name, err)
		}
		want := seqCol.Format()
		toolsSeen := map[string]bool{}
		for _, w := range seqCol.Sites() {
			toolsSeen[w.Tool] = true
		}
		if len(toolsSeen) < 3 {
			t.Fatalf("%s: only %d tool(s) warned (%v); multi-tool test workload is too tame",
				name, len(toolsSeen), toolsSeen)
		}
		for _, shards := range []int{1, 4, 8} {
			eng, err := engine.New(engine.Options{
				Shards:   shards,
				Tools:    allToolSpecs(cfg),
				Resolver: v,
			})
			if err != nil {
				t.Fatalf("%s/%d: New: %v", name, shards, err)
			}
			events, err := eng.ReplayLog(bytes.NewReader(log))
			if err != nil {
				t.Fatalf("%s/%d: ReplayLog: %v", name, shards, err)
			}
			if events != seqEvents {
				t.Errorf("%s/%d: dispatched %d events, sequential saw %d", name, shards, events, seqEvents)
			}
			merged, err := eng.Close()
			if err != nil {
				t.Fatalf("%s/%d: Close: %v", name, shards, err)
			}
			if got := merged.Format(); got != want {
				t.Errorf("%s/%d shards: multi-tool merged output differs from sequential single pass\n--- sequential ---\n%s\n--- merged ---\n%s",
					name, shards, want, got)
			}
			if merged.Occurrences() != seqCol.Occurrences() {
				t.Errorf("%s/%d: occurrences = %d, sequential = %d",
					name, shards, merged.Occurrences(), seqCol.Occurrences())
			}
		}
	}
}

// TestEngineLiveMultiToolMatchesOffline attaches the full registry to a live
// VM (alongside a recorder) and checks that the live sharded run and an
// offline sequential replay of the recording agree byte for byte.
func TestEngineLiveMultiToolMatchesOffline(t *testing.T) {
	workload := func(main *vm.Thread) {
		v := main.VM()
		m1, m2 := v.NewMutex("A"), v.NewMutex("B")
		gate := v.NewSemaphore("gate", 0)
		blocks := make([]*vm.Block, 6)
		for i := range blocks {
			blocks[i] = main.Alloc(8, "blk")
		}
		a := main.Go("a", func(th *vm.Thread) {
			defer th.Func("workerA", "live.cpp", 10)()
			m1.Lock(th)
			m2.Lock(th)
			blocks[0].Store32(th, 0, 1)
			blocks[1].Store32(th, 4, 1)
			m2.Unlock(th)
			m1.Unlock(th)
			blocks[2].Store32(th, 0, 1) // unlocked: race
			gate.Post(th)
		})
		b := main.Go("b", func(th *vm.Thread) {
			defer th.Func("workerB", "live.cpp", 20)()
			gate.Wait(th)
			m2.Lock(th)
			m1.Lock(th) // ABBA inversion
			blocks[0].Store32(th, 0, 2)
			m1.Unlock(th)
			m2.Unlock(th)
			m2.Lock(th)
			blocks[1].Store32(th, 4, 2) // view split for highlevel
			m2.Unlock(th)
			blocks[2].Store32(th, 0, 2) // unlocked: race
		})
		main.Join(a)
		main.Join(b)
		freed := blocks[5]
		freed.Free(main)
		freed.Load32(main, 0) // use after free for memcheck
	}

	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	vLive := vm.New(vm.Options{Seed: 3})
	vLive.AddTool(rec)
	eng, err := engine.New(engine.Options{Shards: 4, Tools: allToolSpecs(lockset.ConfigHWLCDR()), Resolver: vLive})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	vLive.AddTool(eng)
	if err := vLive.Run(workload); err != nil {
		t.Fatalf("live run: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	live, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}

	seq, err := engine.NewSequential(engine.Options{Tools: allToolSpecs(lockset.ConfigHWLCDR()), Resolver: vLive})
	if err != nil {
		t.Fatalf("NewSequential: %v", err)
	}
	if _, err := seq.ReplayLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("offline replay: %v", err)
	}
	offline, err := seq.Close()
	if err != nil {
		t.Fatalf("offline close: %v", err)
	}
	if live.Locations() == 0 {
		t.Fatal("live multi-tool run found nothing; workload is broken")
	}
	got, want := live.Format(), offline.Format()
	if got != want {
		t.Errorf("live sharded output differs from offline sequential replay\n--- offline ---\n%s\n--- live ---\n%s", want, got)
	}
	for _, tool := range []string{"helgrind", "helgrind-deadlock", "memcheck", "highlevel"} {
		if !strings.Contains(want, "=="+tool+"==") {
			t.Errorf("tool %s produced no warnings; the cross-mode check is weaker than intended", tool)
		}
	}
}

// countingSink records one warning per accessed block — a healthy sibling
// for the panic-isolation test.
type countingSink struct {
	trace.BaseSink
	col trace.Reporter
}

func (c *countingSink) ToolName() string { return "healthy" }

func (c *countingSink) Access(a *trace.Access) {
	c.col.Add(report.Warning{Tool: "healthy", Kind: report.KindRace, Block: a.Block, Stack: a.Stack})
}

// TestEngineSiblingPanicIsolation: a tool panicking on its shard must not
// take down sibling tools running in the SAME shard — each instance sits
// behind its own SafeSink. The healthy tool must report every block,
// including those in the panicking tool's shard, and Close must surface the
// panic.
func TestEngineSiblingPanicIsolation(t *testing.T) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	const nBlocks = 16
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Alloc(&trace.Block{ID: b, Base: trace.Addr(0x1000 * uint64(b)), Size: 16, Tag: "t"})
	}
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Access(&trace.Access{Thread: 1, Seg: 1, Block: b, Size: 4, Kind: trace.Write, Stack: trace.StackID(b)})
	}
	rec.Flush()

	const poison = trace.BlockID(3)
	eng, err := engine.New(engine.Options{
		Shards: 4,
		Tools: []trace.ToolSpec{
			{Name: "panicky", Routing: trace.RouteBlock, Factory: func(col trace.Reporter) trace.Sink {
				return &panicSink{col: col, poison: poison}
			}},
			{Name: "healthy", Routing: trace.RouteBlock, Factory: func(col trace.Reporter) trace.Sink {
				return &countingSink{col: col}
			}},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.ReplayLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReplayLog should survive a panicking tool, got: %v", err)
	}
	merged, err := eng.Close()
	if err == nil {
		t.Fatal("Close must report the tool panic")
	}
	if !strings.Contains(err.Error(), "panicky") {
		t.Errorf("Close error should name the failing tool, got: %v", err)
	}
	healthy := 0
	for _, w := range merged.Sites() {
		if w.Tool == "healthy" {
			healthy++
		}
	}
	if healthy != nBlocks {
		t.Errorf("healthy sibling reported %d blocks, want all %d (shard siblings must be isolated)", healthy, nBlocks)
	}
}

// TestEngineDuplicateToolNamesRejected: the registry requires distinct
// report names, since they key warning deduplication across collectors.
func TestEngineDuplicateToolNamesRejected(t *testing.T) {
	_, err := engine.New(engine.Options{
		Tools: []trace.ToolSpec{lockset.Spec(lockset.ConfigHWLC()), lockset.Spec(lockset.ConfigOriginal())},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate tool names must be rejected, got err=%v", err)
	}
	// Distinct report names make two configurations of one detector legal.
	a, b := lockset.ConfigHWLC(), lockset.ConfigOriginal()
	a.Tool, b.Tool = "hwlc", "original"
	eng, err := engine.New(engine.Options{Tools: []trace.ToolSpec{lockset.Spec(a), lockset.Spec(b)}})
	if err != nil {
		t.Fatalf("renamed configs should be accepted: %v", err)
	}
	eng.Close()
}
