package engine_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vm"
)

// recordSmall records a small racy guest (an unlocked shared counter plus an
// allocate/free pair) and returns the binary log and the recording VM.
func recordSmall(t testing.TB) ([]byte, *vm.VM) {
	t.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: 7})
	v.AddTool(rec)
	err := v.Run(func(main *vm.Thread) {
		shared := main.Alloc(8, "shared")
		tmp := main.Alloc(16, "tmp")
		tmp.Write(main, 0, 8)
		tmp.Free(main)
		workers := make([]*vm.Thread, 2)
		for i := range workers {
			workers[i] = main.Go("w", func(th *vm.Thread) {
				for j := 0; j < 4; j++ {
					shared.Store64(th, 0, shared.Load64(th, 0)+1) // racy on purpose
				}
			})
		}
		for _, w := range workers {
			main.Join(w)
		}
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes(), v
}

func closeTools() []trace.ToolSpec {
	return []trace.ToolSpec{
		lockset.Spec(lockset.ConfigHWLCDR()),
		memcheck.Spec(memcheck.Config{}),
	}
}

// midEventCut returns a prefix of log that tears the final event, so that
// decoding it fails rather than ending in a clean io.EOF. Starting near the
// given position it walks backwards until the prefix decodes with an error.
func midEventCut(t testing.TB, log []byte, around int) []byte {
	t.Helper()
	for n := around; n > 1; n-- {
		d := tracelog.NewDecoder(bytes.NewReader(log[:n]))
		var ev tracelog.Event
		var err error
		for err == nil {
			err = d.Next(&ev)
		}
		if err != io.EOF {
			return log[:n]
		}
	}
	t.Fatal("no mid-event cut found")
	return nil
}

// TestCloseIdempotent pins the double-Close contract on both pipeline
// implementations: the second Close returns exactly the first call's
// collector and error, and dispatching after Close is a no-op.
func TestCloseIdempotent(t *testing.T) {
	log, v := recordSmall(t)
	for _, shards := range []int{1, 4} {
		pipe, err := engine.NewPipeline(engine.Options{Tools: closeTools(), Resolver: v, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.ReplayLog(bytes.NewReader(log)); err != nil {
			t.Fatalf("shards=%d: replay: %v", shards, err)
		}
		col1, err1 := pipe.Close()
		if err1 != nil {
			t.Fatalf("shards=%d: close: %v", shards, err1)
		}
		if col1 == nil || col1.Locations() == 0 {
			t.Fatalf("shards=%d: expected warnings from the racy guest", shards)
		}
		col2, err2 := pipe.Close()
		if col2 != col1 || err2 != err1 {
			t.Errorf("shards=%d: second Close = (%p, %v), want (%p, %v)", shards, col2, err2, col1, err1)
		}
		before := pipe.Events()
		pipe.ThreadStart(99, 1) // dispatch after Close must be dropped
		if pipe.Events() != before {
			t.Errorf("shards=%d: dispatch after Close counted an event", shards)
		}
		col3, err3 := pipe.Close()
		if col3 != col1 || err3 != err1 {
			t.Errorf("shards=%d: third Close unstable", shards)
		}
	}
}

// TestCloseAfterStreamError pins the mid-stream failure contract: a replay
// that fails after partial dispatch (truncated log) must make Close return a
// stable error and a nil collector — never a partial merged report — on both
// pipeline implementations.
func TestCloseAfterStreamError(t *testing.T) {
	log, v := recordSmall(t)
	// Cut mid-log: enough bytes for many whole events plus one torn one.
	cut := midEventCut(t, log, len(log)/2)
	for _, shards := range []int{1, 4} {
		pipe, err := engine.NewPipeline(engine.Options{Tools: closeTools(), Resolver: v, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		n, rerr := pipe.ReplayLog(bytes.NewReader(cut))
		if rerr == nil {
			t.Fatalf("shards=%d: truncated replay succeeded", shards)
		}
		if n == 0 {
			t.Fatalf("shards=%d: expected partial dispatch before the failure", shards)
		}
		col1, err1 := pipe.Close()
		if col1 != nil {
			t.Errorf("shards=%d: Close after stream error returned a partial report (%d locations)", shards, col1.Locations())
		}
		if err1 == nil || !strings.Contains(err1.Error(), "stream failed") {
			t.Errorf("shards=%d: Close error = %v, want stream-failure error", shards, err1)
		}
		if !errors.Is(err1, rerr) && !strings.Contains(err1.Error(), rerr.Error()) {
			t.Errorf("shards=%d: Close error %v does not wrap replay error %v", shards, err1, rerr)
		}
		col2, err2 := pipe.Close()
		if col2 != nil || err2 != err1 {
			t.Errorf("shards=%d: second Close after failure = (%v, %v), want (nil, %v)", shards, col2, err2, err1)
		}
		if sums := pipe.Summaries(); len(sums) != 0 {
			// A failed stream has no report surface at all; summaries of a
			// prefix would be as misleading as a partial merged report.
			t.Errorf("shards=%d: Summaries after stream error = %v, want empty", shards, sums)
		}
	}
}

// TestTruncatedLogErrUnexpectedEOF pins that a log truncated mid-event fails
// with io.ErrUnexpectedEOF, not a clean EOF, through both replay paths.
func TestTruncatedLogErrUnexpectedEOF(t *testing.T) {
	log, v := recordSmall(t)
	cut := midEventCut(t, log, len(log)-1)
	for _, shards := range []int{1, 4} {
		pipe, err := engine.NewPipeline(engine.Options{Tools: closeTools(), Resolver: v, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := pipe.ReplayLog(bytes.NewReader(cut))
		pipe.Close()
		if !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Errorf("shards=%d: replay error = %v, want io.ErrUnexpectedEOF", shards, rerr)
		}
	}
}
