//go:build race

package engine_test

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops items at random (to expose lifetime bugs),
// so pooled batches can never reach an allocation-free steady state;
// allocation-budget tests skip themselves. CI enforces the budgets in a
// separate non-race step.
const raceEnabled = true
