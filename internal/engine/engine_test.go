package engine_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cppmodel"
	"repro/internal/engine"
	"repro/internal/libc"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/suppress"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// recordSIP records the racy SIP workload (test case T2 with all seeded
// paper bugs) and returns the binary log plus the recording VM, which acts
// as the stack/block resolver for reports.
func recordSIP(t testing.TB) ([]byte, *vm.VM) {
	t.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: 1, Quantum: 3})
	v.AddTool(rec)
	rt := cppmodel.NewRuntime(cppmodel.Options{AnnotateDeletes: true, ForceNew: true})
	tc, ok := sipp.CaseByID("T2")
	if !ok {
		t.Fatal("case T2 missing")
	}
	err := v.Run(func(main *vm.Thread) {
		lc := libc.New(main)
		srv := sip.NewServer(v, rt, lc, sip.Config{Bugs: sip.PaperBugs()})
		srv.Start(main)
		sink := tc.Drive(main, srv, srv.Config().Domains)
		srv.Stop(main)
		main.Join(sink)
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes(), v
}

// paperConfigs mirrors harness.PaperConfigs without importing harness.
func paperConfigs() map[string]lockset.Config {
	return map[string]lockset.Config{
		"Original": lockset.ConfigOriginal(),
		"HWLC":     lockset.ConfigHWLC(),
		"HWLC+DR":  lockset.ConfigHWLCDR(),
	}
}

// TestEngineMatchesSequentialReplay is the determinism contract: for a fixed
// recorded trace, the engine's merged output with 1, 4 and 8 shards is
// byte-identical to sequential tracelog.Replay output — same warnings, same
// order, same counts — under all three paper configurations.
func TestEngineMatchesSequentialReplay(t *testing.T) {
	log, v := recordSIP(t)
	for name, cfg := range paperConfigs() {
		seqCol := report.NewCollector(v, nil)
		seqDet := lockset.New(cfg, seqCol)
		seqEvents, err := tracelog.Replay(bytes.NewReader(log), seqDet)
		if err != nil {
			t.Fatalf("%s: sequential replay: %v", name, err)
		}
		want := seqCol.Format()
		if seqCol.Locations() == 0 {
			t.Fatalf("%s: sequential replay found no warnings; test workload is broken", name)
		}
		for _, shards := range []int{1, 4, 8} {
			eng, err := engine.New(engine.Options{
				Shards:   shards,
				Factory:  lockset.Factory(cfg),
				Resolver: v,
			})
			if err != nil {
				t.Fatalf("%s/%d: New: %v", name, shards, err)
			}
			events, err := eng.ReplayLog(bytes.NewReader(log))
			if err != nil {
				t.Fatalf("%s/%d: ReplayLog: %v", name, shards, err)
			}
			if events != seqEvents {
				t.Errorf("%s/%d: dispatched %d events, sequential saw %d", name, shards, events, seqEvents)
			}
			merged, err := eng.Close()
			if err != nil {
				t.Fatalf("%s/%d: Close: %v", name, shards, err)
			}
			if got := merged.Format(); got != want {
				t.Errorf("%s/%d shards: merged output differs from sequential replay\n--- sequential ---\n%s\n--- merged ---\n%s",
					name, shards, want, got)
			}
			if merged.Locations() != seqCol.Locations() || merged.Occurrences() != seqCol.Occurrences() {
				t.Errorf("%s/%d: locations/occurrences = %d/%d, sequential = %d/%d",
					name, shards, merged.Locations(), merged.Occurrences(), seqCol.Locations(), seqCol.Occurrences())
			}
		}
	}
}

// TestEngineMatchesSequentialDJIT runs the same determinism check with the
// happens-before detector, whose clocks are driven purely by broadcast
// events.
func TestEngineMatchesSequentialDJIT(t *testing.T) {
	log, v := recordSIP(t)
	cfg := vectorclock.DefaultConfig()
	seqCol := report.NewCollector(v, nil)
	if _, err := tracelog.Replay(bytes.NewReader(log), vectorclock.New(cfg, seqCol)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	want := seqCol.Format()
	for _, shards := range []int{1, 4, 8} {
		eng, err := engine.New(engine.Options{Shards: shards, Factory: vectorclock.Factory(cfg), Resolver: v})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
			t.Fatalf("ReplayLog: %v", err)
		}
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		if got := merged.Format(); got != want {
			t.Errorf("djit/%d shards: merged output differs from sequential", shards)
		}
	}
}

// TestEngineSuppressions checks that per-shard suppression matches the
// sequential collector, including the suppressed-occurrence count in the
// report trailer.
func TestEngineSuppressions(t *testing.T) {
	log, v := recordSIP(t)
	const rules = `
{
   any-destructor
   Helgrind:Race
   fun:*::~*
   ...
}
`
	sup, err := suppress.ParseString(rules)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	cfg := lockset.ConfigOriginal()
	seqCol := report.NewCollector(v, sup)
	if _, err := tracelog.Replay(bytes.NewReader(log), lockset.New(cfg, seqCol)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	eng, err := engine.New(engine.Options{Shards: 4, Factory: lockset.Factory(cfg), Resolver: v, Suppressor: sup})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, want := merged.Format(), seqCol.Format(); got != want {
		t.Errorf("suppressed merged output differs from sequential\n--- sequential ---\n%s\n--- merged ---\n%s", want, got)
	}
	if seqCol.SuppressedSites() == 0 {
		t.Error("suppression rule matched nothing; test is vacuous")
	}
}

// TestEngineLiveStream attaches the engine directly to a running VM (no log
// in between) and compares against the classic online detector.
func TestEngineLiveStream(t *testing.T) {
	workload := func(main *vm.Thread) {
		v := main.VM()
		m := v.NewMutex("m")
		blocks := make([]*vm.Block, 8)
		for i := range blocks {
			blocks[i] = main.Alloc(8, fmt.Sprintf("blk%d", i))
		}
		w := func(t *vm.Thread) {
			defer t.Func("worker", "live.cpp", 10)()
			for i := 0; i < 6; i++ {
				b := blocks[i%len(blocks)]
				t.SetLine(12)
				b.Store32(t, 0, b.Load32(t, 0)+1) // unlocked: race
				m.Lock(t)
				t.SetLine(14)
				b.Store32(t, 4, uint32(i)) // locked
				m.Unlock(t)
			}
		}
		a := main.Go("a", w)
		b := main.Go("b", w)
		main.Join(a)
		main.Join(b)
	}

	cfg := lockset.ConfigHWLCDR()
	vOnline := vm.New(vm.Options{Seed: 7})
	colOnline := report.NewCollector(vOnline, nil)
	vOnline.AddTool(lockset.New(cfg, colOnline))
	if err := vOnline.Run(workload); err != nil {
		t.Fatalf("online run: %v", err)
	}

	vLive := vm.New(vm.Options{Seed: 7})
	eng, err := engine.New(engine.Options{Shards: 4, Factory: lockset.Factory(cfg), Resolver: vLive})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	vLive.AddTool(eng)
	if err := vLive.Run(workload); err != nil {
		t.Fatalf("live run: %v", err)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if colOnline.Locations() == 0 {
		t.Fatal("online detector found nothing; workload is broken")
	}
	if got, want := merged.Format(), colOnline.Format(); got != want {
		t.Errorf("live engine output differs from online detector\n--- online ---\n%s\n--- engine ---\n%s", want, got)
	}
}

// panicSink panics the first time it sees an access to the poison block.
type panicSink struct {
	trace.BaseSink
	col    trace.Reporter
	poison trace.BlockID
}

func (p *panicSink) ToolName() string { return "panicky" }

func (p *panicSink) Access(a *trace.Access) {
	if a.Block == p.poison {
		panic("tool bug")
	}
	p.col.Add(report.Warning{Tool: "panicky", Kind: report.KindRace, Block: a.Block, Stack: a.Stack})
}

// TestEnginePanicIsolation: a detector panicking in one shard must not kill
// the replay; the other shards' findings survive and Close reports the
// panic as an error.
func TestEnginePanicIsolation(t *testing.T) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	const nBlocks = 16
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Alloc(&trace.Block{ID: b, Base: trace.Addr(0x1000 * uint64(b)), Size: 16, Tag: "t"})
	}
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Access(&trace.Access{Thread: 1, Seg: 1, Block: b, Size: 4, Kind: trace.Write, Stack: trace.StackID(b)})
	}
	rec.Flush()

	const poison = trace.BlockID(3)
	eng, err := engine.New(engine.Options{
		Shards:  4,
		Factory: func(col *report.Collector) trace.Sink { return &panicSink{col: col, poison: poison} },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.ReplayLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReplayLog should survive a panicking tool, got: %v", err)
	}
	merged, err := eng.Close()
	if err == nil {
		t.Fatal("Close must report the tool panic")
	}
	// Every block outside the poisoned shard must still have been analysed.
	poisonShard := trace.Shard(poison, 4)
	want := 0
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		if trace.Shard(b, 4) != poisonShard {
			want++
		}
	}
	if merged.Locations() < want {
		t.Errorf("merged has %d sites, want at least %d from healthy shards", merged.Locations(), want)
	}
}

// TestEngineCloseIdempotent: double Close and post-Close dispatch are safe.
func TestEngineCloseIdempotent(t *testing.T) {
	eng, err := engine.New(engine.Options{Shards: 2, Factory: lockset.Factory(lockset.ConfigHWLC())})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, errA := eng.Close()
	b, errB := eng.Close()
	if a != b || errA != nil || errB != nil {
		t.Errorf("Close not idempotent: %v %v %v %v", a, b, errA, errB)
	}
	eng.Access(&trace.Access{Thread: 1, Block: 1, Size: 4}) // must not panic
}
