package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
)

// The bench-trajectory document: the stable, diffable schema perfbench -json
// emits and BENCH_<date>.json files at the repo root commit. Successive PRs
// append one file per host/date, so ns/event and allocs/event regressions
// show up as a diff against the previous file rather than as folklore. The
// schema lives here (not in cmd/perfbench) so tests can validate committed
// files and the -check mode shares one definition with the emitter.

// BenchSchemaVersion is the current BenchDoc schema. Bump it when a field
// changes meaning or is removed; adding fields is backwards-compatible and
// does not require a bump.
const BenchSchemaVersion = 1

// BenchDoc is the perfbench -json output document.
type BenchDoc struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date,omitempty"` // YYYY-MM-DD the run was taken
	Threads   int    `json:"threads"`
	Iters     int    `json:"iters"`
	Slots     int    `json:"slots"`
	Blocks    int    `json:"blocks"`
	Seed      int64  `json:"seed"`
	GoMaxProc int    `json:"gomaxprocs"`
	NumCPU    int    `json:"num_cpu"`
	Shards    int    `json:"shards"`

	Overhead []OverheadRow   `json:"overhead"`
	Replay   []ReplayResult  `json:"replay"`
	OnePass  []OnePassResult `json:"one_pass"`
	Ingest   []IngestResult  `json:"ingest,omitempty"`
	// Overload holds the overload-workload measurements (flooded server,
	// bounded admission, adaptive degradation); absent in documents from
	// before the overload subsystem — adding the field is backwards
	// compatible and needs no schema bump.
	Overload []OverloadResult `json:"overload,omitempty"`
}

// OverheadRow is one §4.5 matrix row in machine-readable form.
type OverheadRow struct {
	Mode    string  `json:"mode"`
	NsTotal int64   `json:"ns_total"`
	Steps   int64   `json:"steps"`
	Ops     int64   `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ParseBenchDoc decodes and validates one BENCH document. Unknown fields are
// an error: a field the current schema cannot represent would silently
// vanish on re-emission, breaking the trajectory diff — exactly what the
// CI -check smoke exists to catch.
func ParseBenchDoc(data []byte) (*BenchDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc BenchDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("harness: bench doc: %w", err)
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Validate checks the document's internal consistency: version, host facts,
// and that every measurement section carries plausible (positive) numbers.
func (d *BenchDoc) Validate() error {
	if d.Schema != BenchSchemaVersion {
		return fmt.Errorf("harness: bench doc schema %d, want %d", d.Schema, BenchSchemaVersion)
	}
	if d.GoMaxProc < 1 || d.NumCPU < 1 || d.Shards < 1 {
		return fmt.Errorf("harness: bench doc host facts implausible: gomaxprocs=%d num_cpu=%d shards=%d",
			d.GoMaxProc, d.NumCPU, d.Shards)
	}
	if len(d.Overhead) == 0 || len(d.Replay) == 0 || len(d.OnePass) == 0 {
		return fmt.Errorf("harness: bench doc missing a section: overhead=%d replay=%d one_pass=%d",
			len(d.Overhead), len(d.Replay), len(d.OnePass))
	}
	for i, r := range d.Overhead {
		if r.Mode == "" || r.NsTotal <= 0 {
			return fmt.Errorf("harness: bench doc overhead[%d] implausible: %+v", i, r)
		}
	}
	for i, r := range d.Replay {
		if r.Config == "" || r.Mode == "" || r.Events <= 0 || r.NsPerEvt <= 0 {
			return fmt.Errorf("harness: bench doc replay[%d] implausible: %+v", i, r)
		}
	}
	for i, r := range d.OnePass {
		if r.Mode == "" || len(r.Tools) == 0 || r.Events <= 0 || r.NsPerEvt <= 0 {
			return fmt.Errorf("harness: bench doc one_pass[%d] implausible: %+v", i, r)
		}
	}
	for i, r := range d.Ingest {
		if r.Sessions < 1 || r.Events <= 0 || r.EventsPerSec <= 0 {
			return fmt.Errorf("harness: bench doc ingest[%d] implausible: %+v", i, r)
		}
	}
	for i, r := range d.Overload {
		if r.Sessions < 1 || r.MaxSessions < 1 || r.NsTotal <= 0 ||
			r.Completed < 1 || r.Completed+r.Rejected > r.Sessions {
			return fmt.Errorf("harness: bench doc overload[%d] implausible: %+v", i, r)
		}
	}
	return nil
}

// allocMeter measures process-wide heap allocation across a benchmark
// region: a GC plus MemStats baseline at start, a MemStats read at the end.
// The numbers are end-to-end (decode + dispatch + tool analysis across all
// goroutines), the honest pipeline-wide figure — the unit tests pin the
// decode/dispatch layers to zero on their own.
type allocMeter struct {
	m0 runtime.MemStats
}

func startAllocMeter() *allocMeter {
	var a allocMeter
	runtime.GC()
	runtime.ReadMemStats(&a.m0)
	return &a
}

// perEvent returns (allocs/event, bytes/event) since the meter started.
func (a *allocMeter) perEvent(events int64) (float64, float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if events <= 0 {
		return 0, 0
	}
	return float64(m1.Mallocs-a.m0.Mallocs) / float64(events),
		float64(m1.TotalAlloc-a.m0.TotalAlloc) / float64(events)
}
