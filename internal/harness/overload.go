package harness

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// The overload benchmark: the adversarial counterpart of the ingest
// benchmark. Where IngestBenchLog sizes MaxSessions to the client count and
// measures clean-path throughput, this floods a deliberately small server —
// many more concurrent sessions than slots, bounded admission, adaptive
// sampling and the degradation ladder on — and measures how the daemon
// degrades: how many sessions completed vs were rejected with a typed busy
// error, how long the slowest rejection took (the admission-latency bound the
// flood test asserts), and exactly how much analysis coverage was shed.

// OverloadResult is one flood measurement.
type OverloadResult struct {
	Sessions    int `json:"sessions"`     // concurrent clients in the flood
	MaxSessions int `json:"max_sessions"` // server analysis slots
	Completed   int `json:"completed"`    // sessions that got a report
	Rejected    int `json:"rejected"`     // sessions refused with a busy error
	// SampledOut and DegradedSessions are the server's exact shed
	// accounting across completed sessions.
	SampledOut       int64 `json:"sampled_out"`
	DegradedSessions int   `json:"degraded_sessions"`
	NsTotal          int64 `json:"ns_total"`
	// MaxRejectNs is the slowest busy rejection observed client-side: the
	// admission path's latency bound under flood.
	MaxRejectNs int64 `json:"max_reject_ns,omitempty"`
	// Obs is the server's flattened metrics snapshot after the flood
	// (admission rejects by reason, sampled events, shed tools, ...).
	Obs map[string]int64 `json:"obs,omitempty"`
}

// OverloadBenchLog floods a small in-process server: sessions concurrent
// clients stream log at a server with maxSessions slots, admission bounded
// by admitTimeout, adaptive sampling and the degradation ladder enabled. A
// busy rejection counts as shed load; any other client failure fails the
// run.
func OverloadBenchLog(log []byte, tools func() []trace.ToolSpec, sessions, maxSessions int, admitTimeout time.Duration) (OverloadResult, error) {
	reg := obs.NewRegistry()
	srv, err := ingest.NewServer(ingest.Config{
		Tools:             tools,
		MaxSessions:       maxSessions,
		AdmitTimeout:      admitTimeout,
		AdaptiveSampling:  true,
		DegradationLadder: true,
		Metrics:           reg,
	})
	if err != nil {
		return OverloadResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return OverloadResult{}, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()
	addr := "tcp:" + ln.Addr().String()

	start := time.Now()
	var (
		mu          sync.Mutex
		completed   int
		rejected    int
		maxRejectNs int64
		firstErr    error
	)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			c, err := ingest.Dial(addr)
			if err == nil {
				defer c.Close()
				_, err = c.StreamTrace(fmt.Sprintf("flood-%d", i), log, 0)
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, tracelog.ErrBusy):
				rejected++
				if ns := time.Since(t0).Nanoseconds(); ns > maxRejectNs {
					maxRejectNs = ns
				}
			default:
				if firstErr == nil {
					firstErr = err
				}
			}
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)
	if firstErr != nil {
		return OverloadResult{}, fmt.Errorf("harness: overload flood: %w", firstErr)
	}

	res := OverloadResult{
		Sessions:    sessions,
		MaxSessions: maxSessions,
		Completed:   completed,
		Rejected:    rejected,
		NsTotal:     dur.Nanoseconds(),
		MaxRejectNs: maxRejectNs,
		Obs:         reg.Series(),
	}
	for _, sess := range srv.Sessions() {
		res.SampledOut += sess.SampledOut()
		if sess.Degraded() {
			res.DegradedSessions++
		}
	}
	return res, nil
}
