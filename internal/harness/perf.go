package harness

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// The §4.5 experiment: the same logical workload executed natively, on the
// bare VM, and on the VM with analysis attached. The paper reports ~8-10×
// for Valgrind alone and 20-30× with Helgrind — i.e. the *analysis* costs a
// further ~2.5-3× on top of the virtual machine. Our VM is a discrete-event
// simulator rather than a JIT, so its absolute slowdown against native Go is
// much larger than Valgrind's; the comparable, preserved quantity is the
// analysis-on-VM ratio.

// PerfMode identifies one measurement configuration.
type PerfMode string

// Measurement configurations.
const (
	PerfNative      PerfMode = "native"
	PerfVM          PerfMode = "vm"
	PerfVMLockset   PerfMode = "vm+lockset"
	PerfVMLocksetDR PerfMode = "vm+lockset+dr"
	PerfVMDJIT      PerfMode = "vm+djit"
)

// PerfResult is one measurement.
type PerfResult struct {
	Mode     PerfMode
	Duration time.Duration
	Steps    int64 // guest operations (0 for native)
	Ops      int64 // logical workload operations
}

// PerfWorkload parameterises the §4.5 workload: worker threads hammering a
// shared table under a lock, with private work in between.
type PerfWorkload struct {
	Threads int
	Iters   int
	Slots   int
	Seed    int64
	// Blocks > 1 allocates the table as that many separate heap blocks
	// instead of one, giving the parallel engine's per-block shard hash
	// something to distribute. 0 or 1 keeps the classic single-block table.
	Blocks int
	// Racy additionally hammers an unlocked counter so detectors have
	// something to report. Off for the §4.5 benchmarks (whose trajectories
	// must stay comparable across PRs); used by determinism cross-checks.
	Racy bool
	// MeasureAllocs additionally records allocs/event and bytes/event for
	// each replay measurement (perfbench -alloc). It forces a GC before
	// every measured run, which perturbs wall-clock numbers slightly — off
	// by default so pure-latency trajectories stay comparable.
	MeasureAllocs bool
	// ToolTime additionally attributes wall time to each tool in the
	// one-pass measurements (perfbench -tooltime), via engine
	// Options.ToolTime. The bracketing clock reads inflate the total
	// ns/event figure, so it is off by default; a run with ToolTime on is an
	// attribution run, not a trajectory point.
	ToolTime bool
}

// DefaultPerfWorkload returns a workload sized for a quick benchmark run.
func DefaultPerfWorkload() PerfWorkload {
	return PerfWorkload{Threads: 4, Iters: 2000, Slots: 64, Seed: 1}
}

// ops returns the logical operation count.
func (w PerfWorkload) ops() int64 { return int64(w.Threads) * int64(w.Iters) }

// RunNative executes the workload with plain goroutines and sync.Mutex —
// the "program run without Helgrind" baseline.
func (w PerfWorkload) RunNative() PerfResult {
	start := time.Now()
	var mu sync.Mutex
	table := make([]uint64, w.Slots)
	counter := uint64(0)
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			local := uint64(th)
			for i := 0; i < w.Iters; i++ {
				mu.Lock()
				slot := (th*w.Iters + i) % w.Slots
				table[slot] += local
				counter++
				mu.Unlock()
				local = local*1664525 + 1013904223 // private work
			}
		}(th)
	}
	wg.Wait()
	_ = counter
	return PerfResult{Mode: PerfNative, Duration: time.Since(start), Ops: w.ops()}
}

// guestBody is the same workload expressed against the VM API. With
// w.Blocks > 1 the table is split across that many blocks (same slot count,
// same access sequence).
func (w PerfWorkload) guestBody(v *vm.VM) func(*vm.Thread) {
	return func(main *vm.Thread) {
		mu := v.NewMutex("table")
		nBlocks := w.Blocks
		if nBlocks < 1 {
			nBlocks = 1
		}
		if nBlocks > w.Slots {
			nBlocks = w.Slots
		}
		perBlock := (w.Slots + nBlocks - 1) / nBlocks
		blocks := make([]*vm.Block, nBlocks)
		for i := range blocks {
			blocks[i] = main.Alloc(perBlock*8, fmt.Sprintf("perf-table-%d", i))
		}
		counter := main.Alloc(8, "perf-counter")
		var racy *vm.Block
		if w.Racy {
			racy = main.Alloc(8, "perf-racy")
		}
		workers := make([]*vm.Thread, w.Threads)
		for th := 0; th < w.Threads; th++ {
			th := th
			workers[th] = main.Go(fmt.Sprintf("w%d", th), func(t *vm.Thread) {
				local := uint64(th)
				for i := 0; i < w.Iters; i++ {
					mu.Lock(t)
					slot := (th*w.Iters + i) % w.Slots
					b := blocks[slot/perBlock]
					off := (slot % perBlock) * 8
					b.Store64(t, off, b.Load64(t, off)+local)
					counter.Store64(t, 0, counter.Load64(t, 0)+1)
					mu.Unlock(t)
					if racy != nil {
						racy.Store64(t, 0, local) // unlocked on purpose
					}
					local = local*1664525 + 1013904223
				}
			})
		}
		for _, t := range workers {
			main.Join(t)
		}
	}
}

// RunVM executes the workload on the VM with the given analysis mode.
func (w PerfWorkload) RunVM(mode PerfMode) (PerfResult, error) {
	v := vm.New(vm.Options{Seed: w.Seed, Quantum: 10, MaxSteps: 500_000_000})
	col := report.NewCollector(v, nil)
	switch mode {
	case PerfVM:
		// bare machine
	case PerfVMLockset:
		v.AddTool(lockset.New(lockset.ConfigOriginal(), col))
	case PerfVMLocksetDR:
		v.AddTool(lockset.New(lockset.ConfigHWLCDR(), col))
	case PerfVMDJIT:
		v.AddTool(vectorclock.New(vectorclock.DefaultConfig(), col))
	default:
		return PerfResult{}, fmt.Errorf("harness: RunVM does not support mode %q", mode)
	}
	start := time.Now()
	if err := v.Run(w.guestBody(v)); err != nil {
		return PerfResult{}, err
	}
	return PerfResult{Mode: mode, Duration: time.Since(start), Steps: v.Steps(), Ops: w.ops()}, nil
}

// Overhead runs the full §4.5 matrix.
func (w PerfWorkload) Overhead() ([]PerfResult, error) {
	out := []PerfResult{w.RunNative()}
	for _, mode := range []PerfMode{PerfVM, PerfVMLockset, PerfVMLocksetDR, PerfVMDJIT} {
		r, err := w.RunVM(mode)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ReplayResult is one offline-replay measurement: the recorded workload
// trace analysed by one detector configuration, sequentially or through the
// sharded engine.
type ReplayResult struct {
	Config    string  `json:"config"`
	Mode      string  `json:"mode"` // "sequential" or "parallel-N"
	Shards    int     `json:"shards"`
	Events    int64   `json:"events"`
	NsTotal   int64   `json:"ns_total"`
	NsPerEvt  float64 `json:"ns_per_event"`
	Locations int     `json:"locations"`
	// AllocsPerEvt/BytesPerEvt are heap allocation rates across the whole
	// measured run (decode + dispatch + analysis), present only with
	// PerfWorkload.MeasureAllocs.
	AllocsPerEvt float64 `json:"allocs_per_event,omitempty"`
	BytesPerEvt  float64 `json:"bytes_per_event,omitempty"`
}

// RecordTrace executes the workload once on the VM with only the trace
// recorder attached and returns the machine (for stack/block resolution)
// plus the encoded binary log. Benchmarks that replay the same trace many
// times (best-of repetitions, several shard counts) should record once with
// this and hand the log to the *Log variants, instead of re-executing the
// deterministic guest on every repetition.
func (w PerfWorkload) RecordTrace() (*vm.VM, []byte, error) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: w.Seed, Quantum: 10, MaxSteps: 500_000_000})
	v.AddTool(rec)
	if err := v.Run(w.guestBody(v)); err != nil {
		return nil, nil, err
	}
	if err := rec.Flush(); err != nil {
		return nil, nil, err
	}
	return v, buf.Bytes(), nil
}

// ReplayBench records the workload's trace once, then measures offline
// analysis throughput for every paper configuration: sequential
// tracelog.Replay versus the engine with the given shard count. The
// location counts double as a determinism cross-check (they must agree
// between the two modes).
func (w PerfWorkload) ReplayBench(shards int) ([]ReplayResult, error) {
	v, log, err := w.RecordTrace()
	if err != nil {
		return nil, err
	}
	return w.ReplayBenchLog(v, log, shards)
}

// ReplayBenchLog is ReplayBench over an already-recorded trace.
func (w PerfWorkload) ReplayBenchLog(v *vm.VM, log []byte, shards int) ([]ReplayResult, error) {
	var out []ReplayResult
	for _, det := range PaperConfigs() {
		var meter *allocMeter
		if w.MeasureAllocs {
			meter = startAllocMeter()
		}
		start := time.Now()
		col := report.NewCollector(v, nil)
		events, err := tracelog.Replay(bytes.NewReader(log), lockset.New(det.Cfg, col))
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		res := ReplayResult{
			Config: det.Name, Mode: "sequential", Shards: 1, Events: events,
			NsTotal: dur.Nanoseconds(), NsPerEvt: float64(dur.Nanoseconds()) / float64(events),
			Locations: col.Locations(),
		}
		if meter != nil {
			res.AllocsPerEvt, res.BytesPerEvt = meter.perEvent(events)
		}
		out = append(out, res)

		if w.MeasureAllocs {
			meter = startAllocMeter()
		}
		start = time.Now()
		eng, err := engine.New(engine.Options{Shards: shards, Tools: []trace.ToolSpec{lockset.Spec(det.Cfg)}, Resolver: v})
		if err != nil {
			return nil, err
		}
		if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
			return nil, err
		}
		merged, err := eng.Close()
		if err != nil {
			return nil, err
		}
		dur = time.Since(start)
		res = ReplayResult{
			Config: det.Name, Mode: fmt.Sprintf("parallel-%d", shards), Shards: shards, Events: events,
			NsTotal: dur.Nanoseconds(), NsPerEvt: float64(dur.Nanoseconds()) / float64(events),
			Locations: merged.Locations(),
		}
		if meter != nil {
			res.AllocsPerEvt, res.BytesPerEvt = meter.perEvent(events)
		}
		out = append(out, res)
	}
	return out, nil
}

// PaperConfigSpecs returns the three Fig. 6 lock-set configurations as
// independently named registry tools (the column name doubles as the report
// name), so one engine pass can evaluate all three columns over a single
// decode of the trace — the paper's "replay the trace N times" comparison
// collapsed into one.
func PaperConfigSpecs() []trace.ToolSpec {
	specs := make([]trace.ToolSpec, 0, 3)
	for _, det := range PaperConfigs() {
		cfg := det.Cfg
		cfg.Tool = det.Name
		specs = append(specs, lockset.Spec(cfg))
	}
	return specs
}

// OnePassResult is one single-decode multi-tool replay measurement: every
// registered tool analysed the trace concurrently in one pass.
type OnePassResult struct {
	Mode      string         `json:"mode"` // "sequential" or "parallel-N"
	Shards    int            `json:"shards"`
	Tools     []string       `json:"tools"`
	Events    int64          `json:"events"`
	NsTotal   int64          `json:"ns_total"`
	NsPerEvt  float64        `json:"ns_per_event"`
	Locations map[string]int `json:"locations_by_tool"`
	// AllocsPerEvt/BytesPerEvt are heap allocation rates across the whole
	// measured run, present only with PerfWorkload.MeasureAllocs.
	AllocsPerEvt float64 `json:"allocs_per_event,omitempty"`
	BytesPerEvt  float64 `json:"bytes_per_event,omitempty"`
	// ToolNs is the wall time spent inside each tool's handlers, present
	// only with PerfWorkload.ToolTime. The residual against NsTotal is
	// decode + dispatch.
	ToolNs map[string]int64 `json:"tool_ns,omitempty"`
}

// OnePassReplay records the workload's trace once, then measures the
// single-decode multi-tool replay: all given tools run concurrently over one
// pass of the log, sequentially (engine.Sequential) and through the engine
// with the given shard count. The per-tool location counts double as a
// determinism cross-check — they must agree between the two modes, and with
// the equivalent one-tool-per-replay runs.
func (w PerfWorkload) OnePassReplay(shards int, specs []trace.ToolSpec) ([]OnePassResult, error) {
	v, log, err := w.RecordTrace()
	if err != nil {
		return nil, err
	}
	return w.OnePassReplayLog(v, log, shards, specs)
}

// OnePassReplayLog is OnePassReplay over an already-recorded trace.
func (w PerfWorkload) OnePassReplayLog(v *vm.VM, log []byte, shards int, specs []trace.ToolSpec) ([]OnePassResult, error) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}

	var meter *allocMeter
	if w.MeasureAllocs {
		meter = startAllocMeter()
	}
	start := time.Now()
	seq, err := engine.NewSequential(engine.Options{Tools: specs, Resolver: v, ToolTime: w.ToolTime})
	if err != nil {
		return nil, err
	}
	events, err := seq.ReplayLog(bytes.NewReader(log))
	if err != nil {
		return nil, err
	}
	col, err := seq.Close()
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	out := []OnePassResult{{
		Mode: "sequential", Shards: 1, Tools: names, Events: events,
		NsTotal: dur.Nanoseconds(), NsPerEvt: float64(dur.Nanoseconds()) / float64(events),
		Locations: col.LocationsByTool(),
		ToolNs:    seq.ToolTimes(),
	}}
	if meter != nil {
		out[0].AllocsPerEvt, out[0].BytesPerEvt = meter.perEvent(events)
	}

	if w.MeasureAllocs {
		meter = startAllocMeter()
	}
	start = time.Now()
	eng, err := engine.New(engine.Options{Shards: shards, Tools: specs, Resolver: v, ToolTime: w.ToolTime})
	if err != nil {
		return nil, err
	}
	if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
		return nil, err
	}
	merged, err := eng.Close()
	if err != nil {
		return nil, err
	}
	dur = time.Since(start)
	par := OnePassResult{
		Mode: fmt.Sprintf("parallel-%d", shards), Shards: shards, Tools: names, Events: events,
		NsTotal: dur.Nanoseconds(), NsPerEvt: float64(dur.Nanoseconds()) / float64(events),
		Locations: merged.LocationsByTool(),
		ToolNs:    eng.ToolTimes(),
	}
	if meter != nil {
		par.AllocsPerEvt, par.BytesPerEvt = meter.perEvent(events)
	}
	out = append(out, par)
	return out, nil
}

// FormatOverhead renders the measurements with slowdowns relative to native
// and to the bare VM.
func FormatOverhead(results []PerfResult) string {
	var native, bare time.Duration
	for _, r := range results {
		switch r.Mode {
		case PerfNative:
			native = r.Duration
		case PerfVM:
			bare = r.Duration
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %10s\n", "mode", "duration", "vs native", "vs bare VM", "steps")
	for _, r := range results {
		vsNative, vsBare := "-", "-"
		if native > 0 && r.Mode != PerfNative {
			vsNative = fmt.Sprintf("%.1fx", float64(r.Duration)/float64(native))
		}
		if bare > 0 && r.Mode != PerfNative && r.Mode != PerfVM {
			vsBare = fmt.Sprintf("%.2fx", float64(r.Duration)/float64(bare))
		}
		fmt.Fprintf(&b, "%-16s %12s %12s %12s %10d\n", r.Mode, r.Duration.Round(10*time.Microsecond), vsNative, vsBare, r.Steps)
	}
	b.WriteString("\npaper (§4.5): VM alone 8-10x native; VM+analysis 20-30x native (~2.5-3x over the VM).\n")
	b.WriteString("this substrate: the VM is a discrete-event simulator, so 'vs native' is inflated;\n")
	b.WriteString("the preserved quantity is the analysis overhead over the bare VM.\n")
	return b.String()
}
