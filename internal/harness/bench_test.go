package harness_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/harness"
)

// sampleBenchDoc builds a minimal valid document.
func sampleBenchDoc() harness.BenchDoc {
	return harness.BenchDoc{
		Schema: harness.BenchSchemaVersion, Date: "2026-08-07",
		Threads: 4, Iters: 2000, Slots: 64, Blocks: 64, Seed: 1,
		GoMaxProc: 1, NumCPU: 1, Shards: 4,
		Overhead: []harness.OverheadRow{{Mode: "native", NsTotal: 100, Ops: 10, NsPerOp: 10}},
		Replay: []harness.ReplayResult{{
			Config: "original", Mode: "sequential", Shards: 1, Events: 1000,
			NsTotal: 50000, NsPerEvt: 50, AllocsPerEvt: 0.4, BytesPerEvt: 12,
		}},
		OnePass: []harness.OnePassResult{{
			Mode: "parallel-4", Shards: 4, Tools: []string{"helgrind"}, Events: 1000,
			NsTotal: 60000, NsPerEvt: 60, Locations: map[string]int{"helgrind": 2},
		}},
		Ingest: []harness.IngestResult{{
			Sessions: 8, Shards: 1, Events: 8000, NsTotal: 1e6, EventsPerSec: 8e6,
			Obs: map[string]int64{"ingest_events_total": 8000},
		}},
	}
}

// TestBenchDocRoundTrip pins the schema contract: a document survives
// marshal → parse unchanged, and parsing rejects unknown fields, wrong
// versions and implausible rows.
func TestBenchDocRoundTrip(t *testing.T) {
	doc := sampleBenchDoc()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := harness.ParseBenchDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, doc) {
		t.Errorf("round trip changed the document:\ngot  %+v\nwant %+v", *got, doc)
	}

	bad := func(name string, mutate func(*harness.BenchDoc)) {
		d := sampleBenchDoc()
		mutate(&d)
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := harness.ParseBenchDoc(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad("wrong schema version", func(d *harness.BenchDoc) { d.Schema = harness.BenchSchemaVersion + 1 })
	bad("zero gomaxprocs", func(d *harness.BenchDoc) { d.GoMaxProc = 0 })
	bad("empty replay", func(d *harness.BenchDoc) { d.Replay = nil })
	bad("replay without events", func(d *harness.BenchDoc) { d.Replay[0].Events = 0 })
	bad("one-pass without tools", func(d *harness.BenchDoc) { d.OnePass[0].Tools = nil })
	bad("ingest without throughput", func(d *harness.BenchDoc) { d.Ingest[0].EventsPerSec = 0 })

	if _, err := harness.ParseBenchDoc([]byte(`{"schema":1,"surprise":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestCommittedBenchFiles validates every BENCH_*.json at the repo root
// against the current schema — the committed performance trajectory must
// stay parseable, or trend tooling silently loses history. At least one
// file must exist: the trajectory is part of the repo's contract.
func TestCommittedBenchFiles(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json committed at the repo root; regenerate with: go run ./cmd/perfbench -json -alloc -ingest > BENCH_<date>.json")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := harness.ParseBenchDoc(data)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		if doc.NumCPU < 1 {
			t.Errorf("%s: num_cpu %d", filepath.Base(p), doc.NumCPU)
		}
	}
}
