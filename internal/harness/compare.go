package harness

import (
	"fmt"
	"strings"
)

// BenchComparison is the result of diffing two BENCH documents: a rendered
// benchstat-style table plus the figures the CI regression gate keys on.
type BenchComparison struct {
	// Table is the human-readable delta table.
	Table string
	// WorstSeqAllocRegress is the largest relative allocs/event increase
	// across sequential replay rows present in both documents (0 when none
	// regressed, or when either side lacks allocation data). The CI bench
	// smoke fails when this exceeds its tolerance.
	WorstSeqAllocRegress float64
	// WorstSeqNsRegress is the same figure for sequential replay ns/event.
	// Wall time on shared CI runners is noisy, so this is informational.
	WorstSeqNsRegress float64
}

// CompareBenchDocs diffs two BENCH documents row by row — replay, one-pass,
// ingest, overhead — matching rows by their identifying key (config+mode,
// session count, overhead mode) and reporting old, new and relative delta
// for each metric, in the spirit of benchstat. Rows present on only one side
// render with a dash. Comparing documents taken with different workload
// parameters is flagged in the header but not refused: the per-event
// normalisation keeps the numbers meaningful across modest size changes.
func CompareBenchDocs(oldDoc, newDoc *BenchDoc) BenchComparison {
	var b strings.Builder
	var cmp BenchComparison

	fmt.Fprintf(&b, "benchmark comparison: %s -> %s\n", docLabel(oldDoc), docLabel(newDoc))
	if oldDoc.Threads != newDoc.Threads || oldDoc.Iters != newDoc.Iters ||
		oldDoc.Slots != newDoc.Slots || oldDoc.Blocks != newDoc.Blocks ||
		oldDoc.Seed != newDoc.Seed {
		b.WriteString("warning: workload parameters differ; per-event figures remain comparable, totals do not\n")
	}
	if oldDoc.GoMaxProc != newDoc.GoMaxProc || oldDoc.Shards != newDoc.Shards {
		fmt.Fprintf(&b, "warning: host/shard shape differs (gomaxprocs %d->%d, shards %d->%d)\n",
			oldDoc.GoMaxProc, newDoc.GoMaxProc, oldDoc.Shards, newDoc.Shards)
	}

	section := func(title string) { fmt.Fprintf(&b, "\n%s\n%-28s %12s %12s %10s\n", title, "", "old", "new", "delta") }

	// Replay: ns/event and (when both sides carry it) allocs/event.
	oldReplay := make(map[string]ReplayResult, len(oldDoc.Replay))
	for _, r := range oldDoc.Replay {
		oldReplay[r.Config+"/"+r.Mode] = r
	}
	section("replay ns/event")
	for _, r := range newDoc.Replay {
		key := r.Config + "/" + r.Mode
		o, ok := oldReplay[key]
		writeRow(&b, key, valueOf(ok, o.NsPerEvt), r.NsPerEvt)
		if ok && r.Mode == "sequential" {
			if reg := regression(o.NsPerEvt, r.NsPerEvt); reg > cmp.WorstSeqNsRegress {
				cmp.WorstSeqNsRegress = reg
			}
		}
	}
	if replayHasAllocs(oldDoc.Replay) && replayHasAllocs(newDoc.Replay) {
		section("replay allocs/event")
		for _, r := range newDoc.Replay {
			key := r.Config + "/" + r.Mode
			o, ok := oldReplay[key]
			writeRow(&b, key, valueOf(ok, o.AllocsPerEvt), r.AllocsPerEvt)
			if ok && r.Mode == "sequential" {
				if reg := regression(o.AllocsPerEvt, r.AllocsPerEvt); reg > cmp.WorstSeqAllocRegress {
					cmp.WorstSeqAllocRegress = reg
				}
			}
		}
	}

	oldOne := make(map[string]OnePassResult, len(oldDoc.OnePass))
	for _, r := range oldDoc.OnePass {
		oldOne[r.Mode] = r
	}
	if len(newDoc.OnePass) > 0 {
		section("one-pass ns/event")
		for _, r := range newDoc.OnePass {
			o, ok := oldOne[r.Mode]
			writeRow(&b, r.Mode, valueOf(ok, o.NsPerEvt), r.NsPerEvt)
		}
	}

	oldIngest := make(map[int]IngestResult, len(oldDoc.Ingest))
	for _, r := range oldDoc.Ingest {
		oldIngest[r.Sessions] = r
	}
	if len(newDoc.Ingest) > 0 {
		section("ingest events/sec")
		for _, r := range newDoc.Ingest {
			o, ok := oldIngest[r.Sessions]
			writeRow(&b, fmt.Sprintf("sessions=%d", r.Sessions), valueOf(ok, o.EventsPerSec), r.EventsPerSec)
		}
	}

	oldOver := make(map[string]OverheadRow, len(oldDoc.Overhead))
	for _, r := range oldDoc.Overhead {
		oldOver[r.Mode] = r
	}
	if len(newDoc.Overhead) > 0 {
		section("overhead ns/op")
		for _, r := range newDoc.Overhead {
			o, ok := oldOver[r.Mode]
			writeRow(&b, r.Mode, valueOf(ok, o.NsPerOp), r.NsPerOp)
		}
	}

	cmp.Table = b.String()
	return cmp
}

func docLabel(d *BenchDoc) string {
	if d.Date != "" {
		return d.Date
	}
	return "(undated)"
}

func replayHasAllocs(rows []ReplayResult) bool {
	for _, r := range rows {
		if r.AllocsPerEvt > 0 {
			return true
		}
	}
	return false
}

// valueOf returns a pointer to v when present, nil otherwise — writeRow's
// "no old row" marker.
func valueOf(present bool, v float64) *float64 {
	if !present {
		return nil
	}
	return &v
}

func writeRow(b *strings.Builder, key string, oldV *float64, newV float64) {
	if oldV == nil {
		fmt.Fprintf(b, "%-28s %12s %12.2f %10s\n", key, "-", newV, "-")
		return
	}
	fmt.Fprintf(b, "%-28s %12.2f %12.2f %10s\n", key, *oldV, newV, deltaStr(*oldV, newV))
}

// deltaStr renders the relative change; "~" when the old value is zero (a
// ratio against zero is meaningless, not infinitely worse).
func deltaStr(oldV, newV float64) string {
	if oldV == 0 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// regression returns the relative increase of new over old (0 when improved
// or when old is zero).
func regression(oldV, newV float64) float64 {
	if oldV <= 0 || newV <= oldV {
		return 0
	}
	return (newV - oldV) / oldV
}
