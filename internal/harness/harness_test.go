package harness

import (
	"strings"
	"testing"

	"repro/internal/cppmodel"
	"repro/internal/libc"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/trace"
	"repro/internal/vm"
)

func TestRunCaseSmoke(t *testing.T) {
	tc, ok := sipp.CaseByID("T2")
	if !ok {
		t.Fatal("T2 missing")
	}
	res, err := RunCase(tc, PaperConfigs()[0], DefaultRunOptions())
	if err != nil {
		t.Fatalf("RunCase: %v", err)
	}
	if res.Handled != tc.MessageCount() {
		t.Errorf("handled = %d, want %d", res.Handled, tc.MessageCount())
	}
	if res.Locations == 0 {
		t.Error("Original configuration reported zero locations; expected FPs and seeded bugs")
	}
	t.Logf("T2/Original: %d locations, families %v, steps %d", res.Locations, res.ByFamily, res.Steps)
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in -short mode")
	}
	rows, all, err := Figure6(DefaultRunOptions())
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	t.Logf("\n%s", FormatFigure6(rows))
	for _, r := range rows {
		if !(r.Original >= r.HWLC && r.HWLC >= r.HWLCDR) {
			t.Errorf("%s: ordering violated: %d >= %d >= %d", r.Case, r.Original, r.HWLC, r.HWLCDR)
		}
		if r.HWLCDR*2 > r.HWLC {
			t.Errorf("%s: DR should cut more than half of HWLC (%d -> %d)", r.Case, r.HWLC, r.HWLCDR)
		}
	}
	lo, hi := ReductionRange(rows)
	t.Logf("reduction range: %.0f%% .. %.0f%% (paper: 65%%..81%%)", lo, hi)
	if lo < 55 || hi > 90 {
		t.Errorf("reduction range %.0f..%.0f too far from the paper's 65..81", lo, hi)
	}
	// True bugs must survive every configuration.
	for _, res := range all {
		if res.Detector == "HWLC+DR" && res.TruePositives() == 0 {
			t.Errorf("%s under HWLC+DR lost all true positives: %v", res.Case, res.ByFamily)
		}
	}
}

func TestClassifierCoversFamilies(t *testing.T) {
	tc, _ := sipp.CaseByID("T5")
	res, err := RunCase(tc, PaperConfigs()[0], DefaultRunOptions())
	if err != nil {
		t.Fatalf("RunCase: %v", err)
	}
	for _, fam := range []Family{FamBusLock, FamDtor} {
		if res.ByFamily[fam] == 0 {
			t.Errorf("family %s missing from T5/Original: %v", fam, res.ByFamily)
		}
	}
	if res.ByFamily[FamOther] > res.Locations/3 {
		t.Errorf("too many unclassified locations (%d of %d): classifier too weak",
			res.ByFamily[FamOther], res.Locations)
	}
}

func TestFamilyInvariants(t *testing.T) {
	// The improvements must remove exactly their own false-positive family
	// and leave the true bugs intact.
	tc, _ := sipp.CaseByID("T5")
	opt := DefaultRunOptions()
	results := map[string]*Result{}
	for _, det := range PaperConfigs() {
		res, err := RunCase(tc, det, opt)
		if err != nil {
			t.Fatalf("RunCase(%s): %v", det.Name, err)
		}
		results[det.Name] = res
	}
	if results["Original"].ByFamily[FamBusLock] == 0 {
		t.Error("Original must report the bus-lock family")
	}
	if results["HWLC"].ByFamily[FamBusLock] != 0 {
		t.Errorf("HWLC must eliminate the bus-lock family, got %d", results["HWLC"].ByFamily[FamBusLock])
	}
	if results["HWLC"].ByFamily[FamDtor] == 0 {
		t.Error("HWLC alone must keep the destructor family")
	}
	if results["HWLC+DR"].ByFamily[FamDtor] != 0 {
		t.Errorf("HWLC+DR must eliminate the destructor family, got %d", results["HWLC+DR"].ByFamily[FamDtor])
	}
	// The seeded true bugs survive the full improvement stack.
	for _, fam := range []Family{FamInit, FamShutdown, FamRefReturn, FamLibc, FamGauge} {
		if results["HWLC+DR"].ByFamily[fam] == 0 {
			t.Errorf("true bug family %s lost under HWLC+DR: %v", fam, results["HWLC+DR"].ByFamily)
		}
	}
}

func TestThreadPoolOwnershipFamily(t *testing.T) {
	// E8 / Fig. 11: the pool pattern adds ownership-transfer FPs that the
	// per-request pattern does not have; the queue-edge extension removes
	// them again.
	tc, _ := sipp.CaseByID("T4")
	opt := DefaultRunOptions()
	opt.Pattern = sip.ThreadPool

	det := PaperConfigs()[2] // HWLC+DR
	res, err := RunCase(tc, det, opt)
	if err != nil {
		t.Fatalf("RunCase pool: %v", err)
	}
	if res.ByFamily[FamOwnership] == 0 {
		t.Errorf("thread-pool run should show ownership-transfer FPs: %v", res.ByFamily)
	}

	ext := det
	ext.Cfg.Mask = trace.MaskFull
	resExt, err := RunCase(tc, ext, opt)
	if err != nil {
		t.Fatalf("RunCase pool+ext: %v", err)
	}
	if resExt.ByFamily[FamOwnership] != 0 {
		t.Errorf("queue-edge extension should remove ownership FPs, got %v", resExt.ByFamily)
	}

	perReq := opt
	perReq.Pattern = sip.ThreadPerRequest
	resReq, err := RunCase(tc, det, perReq)
	if err != nil {
		t.Fatalf("RunCase per-request: %v", err)
	}
	if resReq.ByFamily[FamOwnership] != 0 {
		t.Errorf("thread-per-request must not show ownership FPs (Fig. 10), got %v", resReq.ByFamily)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	tc, _ := sipp.CaseByID("T3")
	opt := DefaultRunOptions()
	a, err := RunCase(tc, PaperConfigs()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase(tc, PaperConfigs()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Locations != b.Locations || a.Steps != b.Steps {
		t.Errorf("same seed differs: %d/%d locations, %d/%d steps",
			a.Locations, b.Locations, a.Steps, b.Steps)
	}
}

func TestSeedSensitivityBounded(t *testing.T) {
	// Different schedules may move a few locations (the §4.3 effect), but
	// the family structure must be stable.
	tc, _ := sipp.CaseByID("T2")
	var locs []int
	for seed := int64(1); seed <= 4; seed++ {
		opt := DefaultRunOptions()
		opt.Seed = seed
		res, err := RunCase(tc, PaperConfigs()[2], opt)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, res.Locations)
		if res.ByFamily[FamDtor] != 0 {
			t.Errorf("seed %d: DR family leaked: %v", seed, res.ByFamily)
		}
	}
	min, max := locs[0], locs[0]
	for _, l := range locs {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > min {
		t.Errorf("location counts vary too wildly across seeds: %v", locs)
	}
}

func TestOverheadShape(t *testing.T) {
	// §4.5: analysis on top of the VM costs a factor comparable to the
	// paper's 20-30/8-10 ≈ 2.5-3x. Allow a generous band: the dense-state
	// detectors brought the analysis cost down to the same order as the
	// bare VM's own dispatch, so a single measurement is noise-dominated —
	// take the best of several runs per mode and tolerate a small apparent
	// speedup at the low end.
	w := PerfWorkload{Threads: 2, Iters: 800, Slots: 16, Seed: 1}
	bestOf := func(m PerfMode) PerfResult {
		var best PerfResult
		for i := 0; i < 3; i++ {
			res, err := w.RunVM(m)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 || res.Duration < best.Duration {
				best = res
			}
		}
		return best
	}
	bare := bestOf(PerfVM)
	full := bestOf(PerfVMLockset)
	ratio := float64(full.Duration) / float64(bare.Duration)
	t.Logf("analysis overhead over bare VM: %.2fx (paper ~2.5-3x)", ratio)
	if ratio < 0.95 {
		t.Errorf("analysis cannot be faster than the bare VM: %.2fx", ratio)
	}
	if ratio > 30 {
		t.Errorf("analysis overhead %.2fx implausibly high", ratio)
	}
	if bare.Steps != full.Steps {
		t.Errorf("same workload must execute the same guest steps: %d vs %d", bare.Steps, full.Steps)
	}
}

func TestSuppressionWorkflowApproximatesImprovements(t *testing.T) {
	// E14: the §2.3.1 manual alternative — Original detector plus a
	// hand-written suppression file — should approximate what the automatic
	// improvements achieve, which is exactly why the paper considers the
	// automatic path superior (no hand-maintained list, works for code
	// without symbols).
	tc, _ := sipp.CaseByID("T2")
	opt := DefaultRunOptions()

	plain, err := RunCase(tc, PaperConfigs()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	optSup := opt
	optSup.Suppressions = HelgrindSuppressions
	suppressed, err := RunCase(tc, PaperConfigs()[0], optSup)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := RunCase(tc, PaperConfigs()[2], opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("T2: original=%d, original+suppressions=%d, HWLC+DR=%d",
		plain.Locations, suppressed.Locations, improved.Locations)
	if suppressed.Locations >= plain.Locations {
		t.Error("suppression file removed nothing")
	}
	if suppressed.Collector.SuppressedSites() == 0 {
		t.Error("no sites recorded as suppressed")
	}
	// The manual list must not beat the improvements by much (it targets
	// the same two families), and true bugs must survive it.
	if suppressed.TruePositives() == 0 {
		t.Errorf("suppressions ate the true positives: %v", suppressed.ByFamily)
	}
	diff := suppressed.Locations - improved.Locations
	if diff < -4 || diff > 12 {
		t.Errorf("manual workflow (%d) too far from automatic improvements (%d)",
			suppressed.Locations, improved.Locations)
	}
}

func TestSeedSweepFindsStableAndFlakyBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	tc, _ := sipp.CaseByID("T2")
	sweep, err := SeedSweep(tc, PaperConfigs()[2], DefaultRunOptions(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// Discipline violations are schedule-independent: every seed must catch
	// the libc and gauge bugs.
	for _, fam := range []Family{FamLibc, FamGauge} {
		if rate := sweep.DetectionRate(fam); rate < 1.0 {
			t.Errorf("family %s detected in %.0f%% of seeds, want 100%%", fam, rate*100)
		}
	}
	// The init-order bug is the paper's schedule-dependent find ("occurred
	// due to the different schedule"): it must show up in SOME seeds but is
	// allowed to hide in others — that is the §2.3.2 motivation for
	// repeated runs.
	if rate := sweep.DetectionRate(FamInit); rate == 0 {
		t.Error("init-order bug never detected across the sweep")
	} else {
		t.Logf("init-order bug detected in %.0f%% of seeds (schedule-dependent, as in §4.1.1)", rate*100)
	}
	t.Logf("per-seed locations: %v", sweep.Locations)
}

func TestServerEventStreamWellFormed(t *testing.T) {
	// The full SIP server run must produce a well-formed event stream; this
	// guards the substrate that every experiment stands on.
	tc, _ := sipp.CaseByID("T5")
	opt := DefaultRunOptions()
	v := vm.New(vm.Options{Seed: opt.Seed, Quantum: opt.Quantum})
	val := trace.NewValidator()
	v.AddTool(val)
	rt := cppmodel.NewRuntime(cppmodel.Options{ForceNew: true})
	err := v.Run(func(main *vm.Thread) {
		lc := libc.New(main)
		srv := sip.NewServer(v, rt, lc, sip.Config{Bugs: sip.PaperBugs()})
		srv.Start(main)
		sink := tc.Drive(main, srv, srv.Config().Domains)
		srv.Stop(main)
		main.Join(sink)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if verr := val.Err(); verr != nil {
		t.Errorf("stream violations: %v", val.Violations())
	}
	if val.Events < 10000 {
		t.Errorf("suspiciously few events: %d", val.Events)
	}
}

func TestFormatFigure6(t *testing.T) {
	rows := []Figure6Row{
		{Case: "T1", Original: 100, HWLC: 60, HWLCDR: 25},
		{Case: "T2", Original: 0, HWLC: 0, HWLCDR: 0},
	}
	out := FormatFigure6(rows)
	for _, want := range []string{"Test case", "T1", "100", "75%", "T2", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFigure6 missing %q:\n%s", want, out)
		}
	}
	lo, hi := ReductionRange(rows)
	if lo != 75 || hi != 75 {
		t.Errorf("ReductionRange = %v..%v, want 75..75 (zero rows skipped)", lo, hi)
	}
}

func TestFormatFigure5(t *testing.T) {
	rows := []Decomposition{{Case: "T1", BusLock: 5, Destructor: 7, Remaining: 3, TotalOrig: 15}}
	out := FormatFigure5(rows)
	for _, want := range []string{"FP(buslock)", "T1", "5", "7", "3", "15"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFigure5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5MatchesFigure6Original(t *testing.T) {
	if testing.Short() {
		t.Skip("full decomposition in -short mode")
	}
	opt := DefaultRunOptions()
	dec, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(rows) {
		t.Fatalf("row counts differ: %d vs %d", len(dec), len(rows))
	}
	for i := range dec {
		if dec[i].TotalOrig != rows[i].Original {
			t.Errorf("%s: decomposition total %d != Fig.6 Original %d",
				dec[i].Case, dec[i].TotalOrig, rows[i].Original)
		}
		if dec[i].BusLock+dec[i].Destructor+dec[i].Remaining != dec[i].TotalOrig {
			t.Errorf("%s: decomposition does not sum: %+v", dec[i].Case, dec[i])
		}
	}
}

func TestRunCaseParallelMatchesSequential(t *testing.T) {
	tc, ok := sipp.CaseByID("T2")
	if !ok {
		t.Fatal("T2 missing")
	}
	for _, det := range PaperConfigs() {
		seq, err := RunCase(tc, det, DefaultRunOptions())
		if err != nil {
			t.Fatalf("%s sequential: %v", det.Name, err)
		}
		opt := DefaultRunOptions()
		opt.Parallel = 4
		par, err := RunCase(tc, det, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", det.Name, err)
		}
		if par.Locations != seq.Locations {
			t.Errorf("%s: parallel locations = %d, sequential = %d", det.Name, par.Locations, seq.Locations)
		}
		if got, want := par.Collector.Format(), seq.Collector.Format(); got != want {
			t.Errorf("%s: parallel report differs from sequential", det.Name)
		}
		for fam, n := range seq.ByFamily {
			if par.ByFamily[fam] != n {
				t.Errorf("%s: family %s = %d parallel, %d sequential", det.Name, fam, par.ByFamily[fam], n)
			}
		}
	}
}

// TestRunCaseParallelWithSuppressions reproduces the live-dispatch pattern
// where shard workers resolve stacks (suppression matching) while the guest
// VM is still interning new ones; it must be identical to sequential and
// race-clean (run with -race).
func TestRunCaseParallelWithSuppressions(t *testing.T) {
	tc, ok := sipp.CaseByID("T2")
	if !ok {
		t.Fatal("T2 missing")
	}
	opt := DefaultRunOptions()
	opt.Suppressions = HelgrindSuppressions
	seq, err := RunCase(tc, PaperConfigs()[0], opt)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	opt.Parallel = 4
	par, err := RunCase(tc, PaperConfigs()[0], opt)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if got, want := par.Collector.Format(), seq.Collector.Format(); got != want {
		t.Errorf("parallel suppressed report differs from sequential")
	}
	if par.Collector.SuppressedSites() != seq.Collector.SuppressedSites() {
		t.Errorf("suppressed = %d parallel, %d sequential",
			par.Collector.SuppressedSites(), seq.Collector.SuppressedSites())
	}
}

// TestOnePassReplayMatchesPerConfig: the one-decode comparative mode must
// report, per paper configuration, exactly the location counts the classic
// one-config-per-replay benchmark reports — sequentially and sharded.
func TestOnePassReplayMatchesPerConfig(t *testing.T) {
	w := PerfWorkload{Threads: 2, Iters: 100, Slots: 16, Seed: 1, Blocks: 16, Racy: true}
	perConfig, err := w.ReplayBench(4)
	if err != nil {
		t.Fatalf("ReplayBench: %v", err)
	}
	want := map[string]int{}
	for _, r := range perConfig {
		if r.Mode == "sequential" {
			want[r.Config] = r.Locations
		}
	}
	onePass, err := w.OnePassReplay(4, PaperConfigSpecs())
	if err != nil {
		t.Fatalf("OnePassReplay: %v", err)
	}
	reported := 0
	for _, n := range want {
		reported += n
	}
	if reported == 0 {
		t.Fatal("racy workload reported nothing; the cross-check is vacuous")
	}
	for _, op := range onePass {
		for cfg, locs := range want {
			if op.Locations[cfg] != locs {
				t.Errorf("%s: config %s = %d locations in one pass, %d per-config",
					op.Mode, cfg, op.Locations[cfg], locs)
			}
		}
	}
	if onePass[0].Events == 0 || onePass[0].Events != onePass[1].Events {
		t.Errorf("event counts inconsistent: %d vs %d", onePass[0].Events, onePass[1].Events)
	}
}
