package harness_test

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/scenario"
)

// BenchmarkIngest measures live-ingest throughput (events/sec through the
// trace-ingest server) at a few session multiplexing levels. One iteration
// streams the recorded workload through every session of the level — this is
// the ingest bench smoke CI runs with -benchtime 1x.
func BenchmarkIngest(b *testing.B) {
	w := harness.PerfWorkload{Threads: 2, Iters: 300, Slots: 32, Seed: 1, Blocks: 32}
	_, log, err := w.RecordTrace()
	if err != nil {
		b.Fatal(err)
	}
	for _, sessions := range []int{1, 4} {
		b.Run(fmt.Sprintf("sessions%d", sessions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.IngestBenchLog(log, scenario.AllTools, 0, []int{sessions})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res[0].EventsPerSec, "events/sec")
			}
		})
	}
}
