package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The ingest benchmark: the live-traffic counterpart of the replay
// benchmarks. One traced workload is recorded once; N concurrent clients
// then stream that trace into a live ingest server, each as its own session
// with its own engine pipeline, and the aggregate events/sec measures how
// the daemon's throughput scales with session multiplexing. On a 1-CPU host
// the numbers measure multiplexing overhead rather than parallel speedup,
// exactly like the engine's shard benchmarks.

// IngestResult is one concurrency level's measurement.
type IngestResult struct {
	Sessions     int     `json:"sessions"`
	Shards       int     `json:"shards"` // per-session engine shards (1 = sequential)
	Events       int64   `json:"events"` // total across sessions
	NsTotal      int64   `json:"ns_total"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvt/BytesPerEvt are process-wide heap allocation rates over
	// the level (server + clients + frame traffic on loopback) — the
	// end-to-end daemon figure, always recorded since the level boundary
	// already quiesces the process.
	AllocsPerEvt float64 `json:"allocs_per_event,omitempty"`
	BytesPerEvt  float64 `json:"bytes_per_event,omitempty"`
	// Obs is the server's flattened metrics snapshot at the end of the level
	// (obs.Registry.Series): the internal counters — events decoded, batches
	// flushed, slot-wait distribution, frame traffic — behind the throughput
	// headline.
	Obs map[string]int64 `json:"obs,omitempty"`
}

// IngestBenchLog measures live-ingest throughput of one recorded trace at
// each of the given session counts: a fresh server per level, sessionCount
// concurrent clients each streaming the full log and waiting for their
// report. tools builds the per-session registry; shards configures the
// per-session pipeline.
func IngestBenchLog(log []byte, tools func() []trace.ToolSpec, shards int, sessionCounts []int) ([]IngestResult, error) {
	var out []IngestResult
	for _, sessions := range sessionCounts {
		res, err := ingestOnce(log, tools, shards, sessions)
		if err != nil {
			return nil, fmt.Errorf("harness: ingest %d sessions: %w", sessions, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func ingestOnce(log []byte, tools func() []trace.ToolSpec, shards, sessions int) (IngestResult, error) {
	reg := obs.NewRegistry()
	srv, err := ingest.NewServer(ingest.Config{Tools: tools, Shards: shards, MaxSessions: sessions, Metrics: reg})
	if err != nil {
		return IngestResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return IngestResult{}, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()
	addr := "tcp:" + ln.Addr().String()

	meter := startAllocMeter()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ingest.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			if _, err := c.StreamTrace(fmt.Sprintf("bench-%d", i), log, 0); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return IngestResult{}, err
		}
	}

	var events int64
	for _, sess := range srv.Sessions() {
		events += sess.Events()
	}
	if shards < 1 {
		shards = 1
	}
	res := IngestResult{
		Sessions:     sessions,
		Shards:       shards,
		Events:       events,
		NsTotal:      dur.Nanoseconds(),
		EventsPerSec: float64(events) / dur.Seconds(),
		Obs:          reg.Series(),
	}
	res.AllocsPerEvt, res.BytesPerEvt = meter.perEvent(events)
	return res, nil
}
