// Package harness ties the test bed together: it runs SIPp test cases
// against the SIP server under a chosen detector configuration, classifies
// every reported location into the paper's warning families (ground truth is
// known because the bugs are seeded) and regenerates the paper's tables and
// figures.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/cppmodel"
	"repro/internal/engine"
	"repro/internal/libc"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/suppress"
	"repro/internal/trace"
	"repro/internal/vm"
)

// DetectorConfig names one column of Fig. 6.
type DetectorConfig struct {
	Name string
	Cfg  lockset.Config
	// AnnotateDeletes routes the build through the instrumentation pass
	// (must accompany Cfg.Destruct, as in the paper's third run).
	AnnotateDeletes bool
}

// PaperConfigs returns the three detector configurations of Fig. 5/6.
func PaperConfigs() []DetectorConfig {
	return []DetectorConfig{
		{Name: "Original", Cfg: lockset.ConfigOriginal()},
		{Name: "HWLC", Cfg: lockset.ConfigHWLC()},
		{Name: "HWLC+DR", Cfg: lockset.ConfigHWLCDR(), AnnotateDeletes: true},
	}
}

// Family classifies a warning site.
type Family string

// Warning families. The fp-* families are the paper's false positives; the
// bug-* families are the seeded §4.1 true positives; benign is the §4.1
// "just a benign race" category.
const (
	FamBusLock   Family = "fp-buslock"
	FamDtor      Family = "fp-destructor"
	FamAllocator Family = "fp-allocator"
	FamOwnership Family = "fp-ownership"
	FamInit      Family = "bug-init-order"
	FamShutdown  Family = "bug-shutdown"
	FamRefReturn Family = "bug-ref-return"
	FamLibc      Family = "bug-libc-static"
	FamMonitor   Family = "bug-dl-monitor"
	FamGauge     Family = "bug-gauge"
	FamTimer     Family = "bug-timer"
	FamBenign    Family = "benign"
	FamOther     Family = "other"
)

// TrueBugFamilies lists the families corresponding to real defects.
var TrueBugFamilies = []Family{FamInit, FamShutdown, FamRefReturn, FamLibc, FamMonitor, FamGauge, FamTimer}

// Result is the outcome of one test-case run under one configuration.
type Result struct {
	Case      string
	Detector  string
	Seed      int64
	Locations int
	ByFamily  map[Family]int
	Handled   int
	Steps     int64
	Collector *report.Collector
}

// FalsePositives counts locations in fp-* families.
func (r *Result) FalsePositives() int {
	return r.ByFamily[FamBusLock] + r.ByFamily[FamDtor] + r.ByFamily[FamAllocator] + r.ByFamily[FamOwnership]
}

// TruePositives counts locations in bug-* families.
func (r *Result) TruePositives() int {
	n := 0
	for _, f := range TrueBugFamilies {
		n += r.ByFamily[f]
	}
	return n
}

// RunOptions configures a harness run.
type RunOptions struct {
	Seed    int64
	Pattern sip.Pattern
	Bugs    sip.Bugs
	// Quantum is the VM scheduling quantum (1 = maximal interleaving).
	Quantum int
	// ForceNew matches the paper's setup: GLIBCPP_FORCE_NEW "must be done
	// prior to calling Helgrind" — allocator FPs are excluded from Fig. 6.
	ForceNew bool
	// Suppressions applies a suppression file (the §2.3.1 manual
	// workflow); empty means none.
	Suppressions string
	// Parallel > 1 routes the detector through the sharded analysis engine
	// (internal/engine) with that many workers, consuming the VM's event
	// stream live. The merged report is deterministic and identical to the
	// sequential one.
	Parallel int
}

// DefaultRunOptions mirrors the paper's experimental environment.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Seed:     1,
		Pattern:  sip.ThreadPerRequest,
		Bugs:     sip.PaperBugs(),
		Quantum:  3,
		ForceNew: true,
	}
}

// HelgrindSuppressions is the manual alternative to the paper's
// improvements (§2.3.1): suppression rules for the libstdc++ string
// reference counter and for compiler-generated destructors. The paper's
// point is that the automatic improvements subsume this hand-maintained
// list.
const HelgrindSuppressions = `
# COW string reference counting (the Fig. 8/9 family)
{
   libstdc++-cow-string-grab
   Helgrind:Race
   fun:std::string::_Rep::_M_grab*
   ...
}
{
   libstdc++-cow-string-dispose
   Helgrind:Race
   fun:std::string::_Rep::_M_dispose*
   ...
}
{
   libstdc++-cow-string-mutate
   Helgrind:Race
   fun:std::string::_M_mutate*
   ...
}
# Compiler-generated destructor vptr rewrites (the §4.2.1 family)
{
   cxx-destructor-chain
   Helgrind:Race
   fun:*::~*
   ...
}
`

// RunCase executes one test case under one detector configuration. With
// opt.Parallel > 1 the detector runs sharded across that many engine
// workers instead of inline on the VM goroutine.
func RunCase(tc sipp.TestCase, det DetectorConfig, opt RunOptions) (*Result, error) {
	v := vm.New(vm.Options{Seed: opt.Seed, Quantum: opt.Quantum})
	var sup report.Suppressor
	if opt.Suppressions != "" {
		f, err := suppress.ParseString(opt.Suppressions)
		if err != nil {
			return nil, fmt.Errorf("harness: bad suppressions: %w", err)
		}
		sup = f
	}
	var col *report.Collector
	var eng *engine.Engine
	if opt.Parallel > 1 {
		var err error
		eng, err = engine.New(engine.Options{
			Shards:     opt.Parallel,
			Tools:      []trace.ToolSpec{lockset.Spec(det.Cfg)},
			Resolver:   v,
			Suppressor: sup,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: engine: %w", err)
		}
		v.AddTool(eng)
	} else {
		col = report.NewCollector(v, sup)
		v.AddTool(lockset.New(det.Cfg, col))
	}

	rt := cppmodel.NewRuntime(cppmodel.Options{
		AnnotateDeletes: det.AnnotateDeletes,
		ForceNew:        opt.ForceNew,
	})
	cfg := sip.Config{Pattern: opt.Pattern, Bugs: opt.Bugs}
	var srv *sip.Server
	err := v.Run(func(main *vm.Thread) {
		lc := libc.New(main)
		srv = sip.NewServer(v, rt, lc, cfg)
		srv.Start(main)
		sink := tc.Drive(main, srv, srv.Config().Domains)
		srv.Stop(main)
		main.Join(sink)
	})
	if eng != nil {
		merged, engErr := eng.Close()
		if engErr != nil && err == nil {
			err = engErr
		}
		col = merged
	}
	if err != nil {
		return nil, fmt.Errorf("harness: case %s under %s: %w", tc.ID, det.Name, err)
	}
	res := &Result{
		Case:      tc.ID,
		Detector:  det.Name,
		Seed:      opt.Seed,
		Locations: col.Locations(),
		ByFamily:  make(map[Family]int),
		Handled:   srv.Handled(),
		Steps:     v.Steps(),
		Collector: col,
	}
	for _, w := range col.Sites() {
		res.ByFamily[Classify(w, v)]++
	}
	return res, nil
}

// Classify maps one warning site to its family using the allocation tag and
// the recorded stack — possible because every seeded behaviour leaves a
// distinctive trail.
func Classify(w *report.Warning, res trace.Resolver) Family {
	tag := ""
	if blk := res.BlockInfo(w.Block); blk != nil {
		tag = blk.Tag
	}
	frames := res.Stack(w.Stack)
	has := func(sub string) bool {
		for _, f := range frames {
			if strings.Contains(f.Fn, sub) {
				return true
			}
		}
		return false
	}
	switch {
	case tag == "monitor-stats" || has("DeadlockMonitor::"):
		return FamMonitor
	case tag == "routes-ready":
		return FamInit
	case tag == "shutdown-flag":
		return FamShutdown
	case has("localtime") || has("asctime") || has("ctime") || has("strtok"):
		return FamLibc
	case tag == "domain-map" || tag == "obj:DomainData" || has("getDomainData") || has("ServerModulesManagerImpl::route"):
		return FamRefReturn
	case tag == "gauge-active-calls":
		return FamGauge
	case has("RetransmitTimer::") && !has("::~"):
		return FamTimer
	case tag == "benign-hitcounter":
		return FamBenign
	case tag == "obj:StatsRegistry" && (has("StatsFlusher::") || has("Server::stop") || has("StatsRegistry::~")):
		return FamShutdown
	case tag == "string-rep" && w.Off < 4:
		// Offset 0 is the reference counter: the bus-lock family. This must
		// outrank the destructor family: a refcount decrement inside
		// ~string is still a bus-lock artefact.
		return FamBusLock
	case has("::~") || has("ca_deletor_single"):
		return FamDtor
	case tag == "packet-buffer":
		return FamOwnership
	case tag == "string-rep":
		// Content races on strings reached through the domain data are part
		// of the Fig. 7 bug; other content races are real findings too.
		if has("route") || has("DomainData") {
			return FamRefReturn
		}
		return FamOther
	default:
		return FamOther
	}
}

// Figure6Row is one row of the Fig. 6 table.
type Figure6Row struct {
	Case     string
	Original int
	HWLC     int
	HWLCDR   int
}

// Figure6 runs all eight test cases under the three configurations.
func Figure6(opt RunOptions) ([]Figure6Row, []*Result, error) {
	var rows []Figure6Row
	var all []*Result
	for _, tc := range sipp.Cases() {
		row := Figure6Row{Case: tc.ID}
		for _, det := range PaperConfigs() {
			res, err := RunCase(tc, det, opt)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, res)
			switch det.Name {
			case "Original":
				row.Original = res.Locations
			case "HWLC":
				row.HWLC = res.Locations
			case "HWLC+DR":
				row.HWLCDR = res.Locations
			}
		}
		rows = append(rows, row)
	}
	return rows, all, nil
}

// FormatFigure6 renders the rows in the paper's table format.
func FormatFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %8s %9s %12s\n", "Test case", "Original", "HWLC", "HWLC+DR", "removed")
	for _, r := range rows {
		rem := "-"
		if r.Original > 0 {
			rem = fmt.Sprintf("%.0f%%", 100*float64(r.Original-r.HWLCDR)/float64(r.Original))
		}
		fmt.Fprintf(&b, "%-10s %10d %8d %9d %12s\n", r.Case, r.Original, r.HWLC, r.HWLCDR, rem)
	}
	return b.String()
}

// ReductionRange returns the smallest and largest per-case percentage of
// warnings removed going from Original to HWLC+DR — the paper's headline
// "65% to 81%" (§1).
func ReductionRange(rows []Figure6Row) (min, max float64) {
	first := true
	for _, r := range rows {
		if r.Original == 0 {
			continue
		}
		red := 100 * float64(r.Original-r.HWLCDR) / float64(r.Original)
		if first || red < min {
			min = red
		}
		if first || red > max {
			max = red
		}
		first = false
	}
	return min, max
}

// Decomposition is the Fig. 5 stacked-bar view of one test case: how many
// Original-configuration locations belong to each removable family, and how
// many remain.
type Decomposition struct {
	Case       string
	BusLock    int // removed by HWLC
	Destructor int // removed by DR
	Remaining  int // true races + benign + other
	TotalOrig  int
}

// Figure5 computes the decomposition for every test case from the Original
// run's classification.
func Figure5(opt RunOptions) ([]Decomposition, error) {
	var out []Decomposition
	for _, tc := range sipp.Cases() {
		res, err := RunCase(tc, PaperConfigs()[0], opt)
		if err != nil {
			return nil, err
		}
		d := Decomposition{
			Case:       tc.ID,
			BusLock:    res.ByFamily[FamBusLock],
			Destructor: res.ByFamily[FamDtor],
			TotalOrig:  res.Locations,
		}
		d.Remaining = d.TotalOrig - d.BusLock - d.Destructor
		out = append(out, d)
	}
	return out, nil
}

// FormatFigure5 renders the decomposition as the stacked-bar data table.
func FormatFigure5(rows []Decomposition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s\n", "Test case", "FP(buslock)", "FP(dtor)", "remaining", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %12d %8d\n", r.Case, r.BusLock, r.Destructor, r.Remaining, r.TotalOrig)
	}
	return b.String()
}

// SweepResult aggregates one experiment across scheduler seeds — the
// paper's §2.3.2 advice made executable: "Repeated tests with different test
// data (resulting in different interleavings) could help find such
// data-races, if they exist."
type SweepResult struct {
	Seeds     int
	Hits      map[Family]int // seeds in which the family was reported
	Locations []int          // per-seed location counts
}

// DetectionRate returns the fraction of seeds in which the family appeared.
func (s *SweepResult) DetectionRate(f Family) float64 {
	if s.Seeds == 0 {
		return 0
	}
	return float64(s.Hits[f]) / float64(s.Seeds)
}

// SeedSweep runs one test case under one configuration across n seeds.
func SeedSweep(tc sipp.TestCase, det DetectorConfig, base RunOptions, n int) (*SweepResult, error) {
	out := &SweepResult{Seeds: n, Hits: make(map[Family]int)}
	for seed := 0; seed < n; seed++ {
		opt := base
		opt.Seed = int64(seed + 1)
		res, err := RunCase(tc, det, opt)
		if err != nil {
			return nil, err
		}
		out.Locations = append(out.Locations, res.Locations)
		for fam, cnt := range res.ByFamily {
			if cnt > 0 {
				out.Hits[fam]++
			}
		}
	}
	return out, nil
}
