// Sipdebug walks through the paper's full debugging process (§3.2, Fig. 3)
// on the SIP proxy server: run a test case under the three detector
// configurations, show how the false-positive families shrink, and print a
// sample of the surviving true findings — the §4.1 bug catalogue.
//
// Run with:
//
//	go run ./examples/sipdebug
//	go run ./examples/sipdebug -case T5 -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/sipp"
)

func main() {
	var (
		caseID  = flag.String("case", "T2", "test case T1..T8")
		seed    = flag.Int64("seed", 1, "scheduler seed")
		verbose = flag.Bool("verbose", false, "print every surviving warning")
	)
	flag.Parse()

	tc, ok := sipp.CaseByID(*caseID)
	if !ok {
		fmt.Fprintf(os.Stderr, "sipdebug: unknown case %q\n", *caseID)
		os.Exit(2)
	}
	opt := harness.DefaultRunOptions()
	opt.Seed = *seed

	fmt.Printf("debugging the SIP proxy with test case %s (%s): %d messages, %d clients\n\n",
		tc.ID, tc.Name, tc.MessageCount(), tc.Clients)

	var final *harness.Result
	for _, det := range harness.PaperConfigs() {
		res, err := harness.RunCase(tc, det, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sipdebug:", err)
			os.Exit(1)
		}
		fmt.Printf("%-9s: %3d reported locations", det.Name, res.Locations)
		fams := make([]string, 0, len(res.ByFamily))
		for f := range res.ByFamily {
			fams = append(fams, string(f))
		}
		sort.Strings(fams)
		fmt.Print("  [")
		for i, f := range fams {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s:%d", f, res.ByFamily[harness.Family(f)])
		}
		fmt.Println("]")
		final = res
	}

	fmt.Printf("\nafter both improvements, %d locations remain; the paper: \"most of them are\n", final.Locations)
	fmt.Println("real synchronization failures\". The survivors here are the seeded §4.1 bugs:")
	fmt.Printf("  true positives: %d, benign: %d, unclassified: %d\n\n",
		final.TruePositives(), final.ByFamily[harness.FamBenign], final.ByFamily[harness.FamOther])

	if *verbose {
		for _, w := range final.Collector.Sites() {
			fmt.Print(report.FormatWarning(w, nil))
			fmt.Println()
		}
	} else {
		fmt.Println("re-run with -verbose to see each surviving warning site")
	}
}
