// Threadpool reproduces Fig. 10 and Fig. 11 of the paper: the same
// "setup data, hand it to a worker, process it" flow implemented with
// thread-per-request (ownership passes via thread creation — understood by
// the thread-segment refinement) and with a thread pool (ownership passes
// via a message queue — NOT understood by stock Helgrind, producing a false
// positive that only the paper's future-work extension removes).
//
// Run with:
//
//	go run ./examples/threadpool
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	run("Fig. 10: thread-per-request, stock detector", core.OptionsHWLCDR(), perRequest)

	run("Fig. 11: thread pool, stock detector (expected false positive)", core.OptionsHWLCDR(), pooled)

	ext := core.OptionsHWLCDR()
	ext.Lockset.Mask = trace.MaskFull
	run("Fig. 11 with queue-edge extension (silent again)", ext, pooled)
}

func run(title string, opt core.Options, program func(*vm.Thread)) {
	opt.Seed = 1
	res, err := core.Run(opt, program)
	if err != nil {
		panic(err)
	}
	fmt.Printf("== %s ==\n", title)
	if res.Locations() == 0 {
		fmt.Println("no warnings")
	} else {
		fmt.Print(res.Report())
	}
	fmt.Println()
}

// perRequest: Create -> setup data -> worker processes -> Join (Fig. 10).
func perRequest(main *vm.Thread) {
	for req := 0; req < 3; req++ {
		data := main.Alloc(8, "message-data")
		data.Store32(main, 0, uint32(21+req)) // setup data
		w := main.Go("request-worker", func(t *vm.Thread) {
			defer t.Func("processRequest", "worker.cpp", 30)()
			data.Store32(t, 0, data.Load32(t, 0)*2) // process data
		})
		main.Join(w)
		if got := data.Load32(main, 0); got != uint32((21+req)*2) {
			panic("wrong result")
		}
	}
}

// pooled: the worker exists BEFORE the data; ownership moves through the
// queue's put/get (Fig. 11).
func pooled(main *vm.Thread) {
	v := main.VM()
	jobs := v.NewQueue("jobs", 0)
	done := v.NewQueue("done", 0)
	worker := main.Go("pool-worker", func(t *vm.Thread) {
		defer t.Func("poolWorker", "pool.cpp", 12)()
		for {
			msg, ok := jobs.Get(t) // wait
			if !ok {
				return
			}
			blk := msg.(*vm.Block)
			t.SetLine(17)
			blk.Store32(t, 0, blk.Load32(t, 0)*2) // process data
			done.Put(t, blk)                      // post
		}
	})
	for req := 0; req < 3; req++ {
		data := main.Alloc(8, "message-data")
		main.SetLine(70)
		data.Store32(main, 0, uint32(21+req)) // setup data
		jobs.Put(main, data)                  // post
		r, _ := done.Get(main)                // wait
		if got := r.(*vm.Block).Load32(main, 0); got != uint32((21+req)*2) {
			panic("wrong result")
		}
	}
	jobs.Close(main)
	main.Join(worker)
}
