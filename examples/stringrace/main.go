// Stringrace reproduces Fig. 8/9 of the paper: a GNU libstdc++ copy-on-write
// std::string is copied by two threads. The reference-count update mixes a
// plain read (the leak check) with a LOCK-prefixed increment; under the
// original Helgrind bus-lock model this produces the famous false positive
// inside std::string::_Rep::_M_grab, and the corrected read-write-lock model
// (HWLC) silences it.
//
// Run with:
//
//	go run ./examples/stringrace
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cppmodel"
	"repro/internal/vm"
)

func main() {
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"Original (single pseudo-mutex bus lock)", core.OptionsOriginal()},
		{"HWLC (read-write-lock bus lock)", core.OptionsHWLC()},
	} {
		rt := cppmodel.NewRuntime(cppmodel.Options{ForceNew: true})
		cfg.opt.Seed = 1
		res, err := core.Run(cfg.opt, fig8Program(rt))
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s ==\n", cfg.name)
		if res.Locations() == 0 {
			fmt.Println("no warnings — the refcount is recognised as bus-locked")
		} else {
			fmt.Print(res.Report())
		}
		fmt.Println()
	}
}

// fig8Program is the stringtest.cpp of Fig. 8, line for line:
//
//	16  std::string text("contents");
//	19  pthread_create(&thread_id, 0, workerThread, &text);
//	10      std::string text = *(std::string*)arguments;   (in the worker)
//	21  sleep(1);
//	22  std::string text_copy = text;                      <- reported conflict
//	25  pthread_join(thread_id, &result);
func fig8Program(rt *cppmodel.Runtime) func(*vm.Thread) {
	return func(main *vm.Thread) {
		defer main.Func("main", "stringtest.cpp", 14)()
		main.SetLine(16)
		text := rt.NewCowString(main, "contents")

		main.SetLine(19)
		worker := main.Go("workerThread", func(t *vm.Thread) {
			defer t.Func("workerThread", "stringtest.cpp", 8)()
			t.SetLine(10)
			cp := text.Copy(t)
			cp.Release(t)
		})

		main.SetLine(21)
		main.Sleep(10) // sleep(1)

		main.SetLine(22)
		textCopy := text.Copy(main) // <- reported conflict
		textCopy.Release(main)

		main.SetLine(25)
		main.Join(worker)
		text.Release(main)
	}
}
