// Quickstart: check a small multi-threaded guest program for data races.
//
// The program has two bugs and one safe pattern:
//   - an unprotected shared counter (reported),
//   - a map updated under inconsistent locks (reported),
//   - a properly locked work queue total (silent).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vm"
)

func main() {
	res, err := core.Run(core.Options{Seed: 42, Deadlocks: true}, program)
	if err != nil {
		panic(err)
	}
	fmt.Println("== quickstart: Helgrind-style report ==")
	fmt.Print(res.Report())
	fmt.Printf("guest operations executed: %d\n", res.Steps)
}

// program is the guest application. Guest code receives a *vm.Thread and
// goes through it for every memory access and synchronisation operation,
// which is how the detector observes the execution (the role binary
// instrumentation plays for a real C++ binary).
func program(main *vm.Thread) {
	v := main.VM()

	// Shared state.
	hits := main.Alloc(4, "hits")          // unprotected: BUG
	table := main.Alloc(64, "user-table")  // protected inconsistently: BUG
	total := main.Alloc(8, "queued-total") // protected consistently: OK
	tableMu := v.NewMutex("tableMu")
	totalMu := v.NewMutex("totalMu")

	worker := func(id int) func(*vm.Thread) {
		return func(t *vm.Thread) {
			defer t.Func("worker", "quickstart.go", 40+id)()
			for i := 0; i < 16; i++ {
				// BUG 1: racy statistics counter.
				t.SetLine(44)
				hits.Store32(t, 0, hits.Load32(t, 0)+1)

				// BUG 2: worker 0 forgets the table lock.
				t.SetLine(48)
				if id == 0 {
					table.Store32(t, (i%8)*4, uint32(id))
				} else {
					tableMu.Lock(t)
					table.Store32(t, (i%8)*4, uint32(id))
					tableMu.Unlock(t)
				}

				// OK: consistent locking discipline.
				t.SetLine(57)
				totalMu.Lock(t)
				total.Store64(t, 0, total.Load64(t, 0)+uint64(i))
				totalMu.Unlock(t)
			}
		}
	}

	a := main.Go("worker-0", worker(0))
	b := main.Go("worker-1", worker(1))
	main.Join(a)
	main.Join(b)
}
