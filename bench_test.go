// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark reports the figures' key quantities as custom metrics
// (locations, families, detection rates) alongside the usual ns/op, so that
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation in one run. The per-experiment index
// lives in DESIGN.md §5; EXPERIMENTS.md records paper-vs-measured values.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cppmodel"
	"repro/internal/harness"
	"repro/internal/libc"
	"repro/internal/lockset"
	"repro/internal/scenario"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ---- E1: Fig. 6 table — locations per test case and configuration ----

func BenchmarkFig6(b *testing.B) {
	for _, tc := range sipp.Cases() {
		for _, det := range harness.PaperConfigs() {
			b.Run(fmt.Sprintf("%s/%s", tc.ID, det.Name), func(b *testing.B) {
				opt := harness.DefaultRunOptions()
				var locations int
				for i := 0; i < b.N; i++ {
					res, err := harness.RunCase(tc, det, opt)
					if err != nil {
						b.Fatal(err)
					}
					locations = res.Locations
				}
				b.ReportMetric(float64(locations), "locations")
			})
		}
	}
}

// ---- E2: Fig. 5 decomposition — FP families under Original ----

func BenchmarkFig5Decomposition(b *testing.B) {
	for _, tc := range sipp.Cases() {
		b.Run(tc.ID, func(b *testing.B) {
			opt := harness.DefaultRunOptions()
			var dec harness.Decomposition
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, harness.PaperConfigs()[0], opt)
				if err != nil {
					b.Fatal(err)
				}
				dec = harness.Decomposition{
					BusLock:    res.ByFamily[harness.FamBusLock],
					Destructor: res.ByFamily[harness.FamDtor],
					TotalOrig:  res.Locations,
				}
			}
			b.ReportMetric(float64(dec.BusLock), "fp-buslock")
			b.ReportMetric(float64(dec.Destructor), "fp-destructor")
			b.ReportMetric(float64(dec.TotalOrig-dec.BusLock-dec.Destructor), "remaining")
		})
	}
}

// ---- E3: §1 headline — reduction range across the suite ----

func BenchmarkReductionRange(b *testing.B) {
	opt := harness.DefaultRunOptions()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = harness.ReductionRange(rows)
	}
	b.ReportMetric(lo, "min-%removed")
	b.ReportMetric(hi, "max-%removed")
}

// ---- E4: Fig. 8/9 — the COW string false positive ----

func BenchmarkFig8StringRace(b *testing.B) {
	prog := func(rt *cppmodel.Runtime) func(*vm.Thread) {
		return func(main *vm.Thread) {
			text := rt.NewCowString(main, "contents")
			worker := main.Go("worker", func(t *vm.Thread) {
				cp := text.Copy(t)
				cp.Release(t)
			})
			main.Sleep(10)
			cp := text.Copy(main)
			cp.Release(main)
			main.Join(worker)
			text.Release(main)
		}
	}
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"Original", core.OptionsOriginal()},
		{"HWLC", core.OptionsHWLC()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var locations int
			for i := 0; i < b.N; i++ {
				rt := cppmodel.NewRuntime(cppmodel.Options{ForceNew: true})
				o := cfg.opt
				o.Seed = 1
				res, err := core.Run(o, prog(rt))
				if err != nil {
					b.Fatal(err)
				}
				locations = res.Locations()
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

// ---- E8: Fig. 10/11 — ownership transfer per pattern ----

func BenchmarkFig11ThreadPool(b *testing.B) {
	tc, _ := sipp.CaseByID("T4")
	for _, mode := range []struct {
		name    string
		pattern sip.Pattern
		mask    trace.EdgeMask
	}{
		{"per-request/stock", sip.ThreadPerRequest, 0},
		{"pool/stock", sip.ThreadPool, 0},
		{"pool/queue-edges", sip.ThreadPool, trace.MaskFull},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := harness.DefaultRunOptions()
			opt.Pattern = mode.pattern
			det := harness.PaperConfigs()[2] // HWLC+DR
			if mode.mask != 0 {
				det.Cfg.Mask = mode.mask
			}
			var ownership int
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, det, opt)
				if err != nil {
					b.Fatal(err)
				}
				ownership = res.ByFamily[harness.FamOwnership]
			}
			b.ReportMetric(float64(ownership), "fp-ownership")
		})
	}
}

// ---- E9: §4.3 — schedule-dependent false negatives ----

func BenchmarkSec43ScheduleSweep(b *testing.B) {
	const seeds = 32
	run := func(seed int64) bool {
		res, err := core.Run(core.Options{Lockset: lockset.ConfigOriginal(), Seed: seed},
			func(main *vm.Thread) {
				v := main.VM()
				blk := main.Alloc(4, "x")
				m := v.NewMutex("m")
				unlocked := main.Go("unlocked", func(t *vm.Thread) {
					t.Sleep(seed % 7)
					blk.Store32(t, 0, 1)
				})
				locked := main.Go("locked", func(t *vm.Thread) {
					t.Sleep((seed + 3) % 7)
					m.Lock(t)
					blk.Store32(t, 0, 2)
					m.Unlock(t)
				})
				main.Join(unlocked)
				main.Join(locked)
			})
		if err != nil {
			b.Fatal(err)
		}
		return res.Locations() > 0
	}
	var rate float64
	for i := 0; i < b.N; i++ {
		hits := 0
		for seed := int64(0); seed < seeds; seed++ {
			if run(seed) {
				hits++
			}
		}
		rate = float64(hits) / float64(seeds)
	}
	b.ReportMetric(rate*100, "%schedules-detected")
}

// ---- E10: §4.5 — overhead matrix ----

func BenchmarkOverheadNative(b *testing.B) {
	w := harness.DefaultPerfWorkload()
	for i := 0; i < b.N; i++ {
		w.RunNative()
	}
}

func benchVM(b *testing.B, mode harness.PerfMode) {
	w := harness.DefaultPerfWorkload()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunVM(mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadVM(b *testing.B)          { benchVM(b, harness.PerfVM) }
func BenchmarkOverheadVMLockset(b *testing.B)   { benchVM(b, harness.PerfVMLockset) }
func BenchmarkOverheadVMLocksetDR(b *testing.B) { benchVM(b, harness.PerfVMLocksetDR) }
func BenchmarkOverheadVMDJIT(b *testing.B)      { benchVM(b, harness.PerfVMDJIT) }

// ---- E11: allocator modes — pool reuse vs GLIBCPP_FORCE_NEW ----

func BenchmarkAllocatorModes(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	for _, mode := range []struct {
		name     string
		forceNew bool
	}{
		{"pooled", false},
		{"force-new", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := harness.DefaultRunOptions()
			opt.ForceNew = mode.forceNew
			var locations int
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, harness.PaperConfigs()[2], opt)
				if err != nil {
					b.Fatal(err)
				}
				locations = res.Locations
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

// ---- E12: detector comparison on the same workload ----

func BenchmarkDetectorComparison(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	for _, kind := range []core.DetectorKind{core.DetectorLockset, core.DetectorDJIT, core.DetectorHybrid} {
		b.Run(kind.String(), func(b *testing.B) {
			var locations int
			for i := 0; i < b.N; i++ {
				opt := harness.DefaultRunOptions()
				res, err := runCaseWithDetector(tc, kind, opt)
				if err != nil {
					b.Fatal(err)
				}
				locations = res
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

// runCaseWithDetector reruns a SIPp case under an arbitrary detector kind.
func runCaseWithDetector(tc sipp.TestCase, kind core.DetectorKind, opt harness.RunOptions) (int, error) {
	o := core.Options{
		Detector: kind,
		Lockset:  lockset.ConfigHWLCDR(),
		Seed:     opt.Seed,
		Quantum:  opt.Quantum,
	}
	rt := cppmodel.NewRuntime(cppmodel.Options{AnnotateDeletes: true, ForceNew: opt.ForceNew})
	res, err := core.Run(o, func(main *vm.Thread) {
		lc := libc.New(main)
		srv := sip.NewServer(main.VM(), rt, lc, sip.Config{Pattern: opt.Pattern, Bugs: opt.Bugs})
		srv.Start(main)
		sink := tc.Drive(main, srv, srv.Config().Domains)
		srv.Stop(main)
		main.Join(sink)
	})
	if err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	return res.Locations(), nil
}

// ---- E13: deadlock detection ----

func BenchmarkDeadlockDetector(b *testing.B) {
	var cycles int
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Options{Seed: 1, Deadlocks: true}, func(main *vm.Thread) {
			v := main.VM()
			m1, m2, m3 := v.NewMutex("A"), v.NewMutex("B"), v.NewMutex("C")
			pair := func(x, y *vm.Mutex) func(*vm.Thread) {
				return func(t *vm.Thread) {
					x.Lock(t)
					y.Lock(t)
					y.Unlock(t)
					x.Unlock(t)
				}
			}
			for _, p := range []func(*vm.Thread){pair(m1, m2), pair(m2, m3), pair(m3, m1)} {
				w := main.Go("w", p)
				main.Join(w)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.DeadlockDetector.Cycles()
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// ---- Ablations: the design choices called out in DESIGN.md ----

func BenchmarkAblationThreadSegments(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	for _, mode := range []struct {
		name     string
		segments bool
	}{
		{"with-segments", true},
		{"plain-eraser", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			det := harness.DetectorConfig{Name: mode.name, Cfg: lockset.ConfigHWLCDR(), AnnotateDeletes: true}
			det.Cfg.ThreadSegments = mode.segments
			var locations int
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, det, harness.DefaultRunOptions())
				if err != nil {
					b.Fatal(err)
				}
				locations = res.Locations
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

func BenchmarkAblationQuantum(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	for _, q := range []int{1, 3, 10, 50} {
		b.Run(fmt.Sprintf("quantum-%d", q), func(b *testing.B) {
			opt := harness.DefaultRunOptions()
			opt.Quantum = q
			var locations int
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, harness.PaperConfigs()[0], opt)
				if err != nil {
					b.Fatal(err)
				}
				locations = res.Locations
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

// ---- Microbenchmarks of the substrate ----

func BenchmarkVMMemoryAccess(b *testing.B) {
	v := vm.New(vm.Options{Seed: 1, Quantum: 100, MaxSteps: int64(b.N)*2 + 1000})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = v.Run(func(main *vm.Thread) {
			blk := main.Alloc(64, "bench")
			for i := 0; i < b.N; i++ {
				blk.Store32(main, (i%16)*4, uint32(i))
			}
		})
	}()
	<-done
}

func BenchmarkVMMutexRoundtrip(b *testing.B) {
	v := vm.New(vm.Options{Seed: 1, Quantum: 100, MaxSteps: int64(b.N)*4 + 1000})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = v.Run(func(main *vm.Thread) {
			m := v.NewMutex("bench")
			for i := 0; i < b.N; i++ {
				m.Lock(main)
				m.Unlock(main)
			}
		})
	}()
	<-done
}

func BenchmarkLocksetPipeline(b *testing.B) {
	// End-to-end detector cost per access on a two-thread handoff pattern.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.Options{Seed: 1, Quantum: 10}, func(main *vm.Thread) {
			blk := main.Alloc(64, "x")
			m := main.VM().NewMutex("m")
			w := func(t *vm.Thread) {
				for j := 0; j < 100; j++ {
					m.Lock(t)
					blk.Store32(t, (j%16)*4, uint32(j))
					m.Unlock(t)
				}
			}
			a := main.Go("a", w)
			c := main.Go("b", w)
			main.Join(a)
			main.Join(c)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E15: generated-scenario replay throughput ----

// BenchmarkScenarioReplay replays one generated conformance scenario
// (internal/scenario, the trace recorded once outside the loop) through the
// full six-tool registry, reporting ns/event — offline multi-tool analysis
// throughput on a catalog workload rather than the SIP server.
func BenchmarkScenarioReplay(b *testing.B) {
	s := scenario.Generate(scenario.GenConfig{Seed: 7})
	recVM, log, err := scenario.Record(s, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	events, err := scenario.CountEvents(log)
	if err != nil {
		b.Fatal(err)
	}
	var locations int
	for i := 0; i < b.N; i++ {
		col, err := scenario.RunOffline(recVM, log, 1)
		if err != nil {
			b.Fatal(err)
		}
		locations = col.Locations()
	}
	b.ReportMetric(float64(locations), "locations")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*events), "ns/event")
}

// ---- E14: the §2.3.1 manual suppression workflow vs the improvements ----

func BenchmarkSuppressionWorkflow(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	for _, mode := range []struct {
		name string
		det  harness.DetectorConfig
		sup  string
	}{
		{"original", harness.PaperConfigs()[0], ""},
		{"original+suppressions", harness.PaperConfigs()[0], harness.HelgrindSuppressions},
		{"hwlc+dr", harness.PaperConfigs()[2], ""},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := harness.DefaultRunOptions()
			opt.Suppressions = mode.sup
			var locations int
			for i := 0; i < b.N; i++ {
				res, err := harness.RunCase(tc, mode.det, opt)
				if err != nil {
					b.Fatal(err)
				}
				locations = res.Locations
			}
			b.ReportMetric(float64(locations), "locations")
		})
	}
}

// ---- Seed sweep: the paper's repeated-runs methodology ----

func BenchmarkSeedSweepDetectionRate(b *testing.B) {
	tc, _ := sipp.CaseByID("T2")
	var rate float64
	for i := 0; i < b.N; i++ {
		sweep, err := harness.SeedSweep(tc, harness.PaperConfigs()[2], harness.DefaultRunOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
		rate = sweep.DetectionRate(harness.FamShutdown)
	}
	b.ReportMetric(rate*100, "%seeds-shutdown-bug")
}
