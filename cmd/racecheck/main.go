// Command racecheck runs one of the built-in demonstration workloads under a
// chosen detector configuration and prints the Helgrind-style report — the
// interactive entry point to the library, analogous to invoking
// `valgrind --tool=helgrind ./program`.
//
// Usage:
//
//	racecheck -list
//	racecheck -workload stringrace -config original
//	racecheck -workload counter -detector djit
//	racecheck -workload threadpool -config hwlc+dr -edges full
//	racecheck -workload counter -tools lockset,djit,deadlock,memcheck -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/cppmodel"
	"repro/internal/lockset"
	"repro/internal/trace"
	"repro/internal/vm"
)

// workloads are small self-contained guest programs exercising the paper's
// key scenarios.
var workloads = map[string]struct {
	desc string
	body func(rt *cppmodel.Runtime) func(*vm.Thread)
}{
	"counter": {
		desc: "two threads increment an unprotected counter (a plain data race)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				b := main.Alloc(4, "counter")
				w := func(t *vm.Thread) {
					for i := 0; i < 10; i++ {
						b.Store32(t, 0, b.Load32(t, 0)+1)
					}
				}
				a := main.Go("a", w)
				c := main.Go("b", w)
				main.Join(a)
				main.Join(c)
			}
		},
	},
	"locked": {
		desc: "the same counter, properly locked (no warnings expected)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				m := main.VM().NewMutex("m")
				b := main.Alloc(4, "counter")
				w := func(t *vm.Thread) {
					for i := 0; i < 10; i++ {
						m.Lock(t)
						b.Store32(t, 0, b.Load32(t, 0)+1)
						m.Unlock(t)
					}
				}
				a := main.Go("a", w)
				c := main.Go("b", w)
				main.Join(a)
				main.Join(c)
			}
		},
	},
	"stringrace": {
		desc: "Fig. 8: COW string copied across threads (false positive under -config original)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				text := rt.NewCowString(main, "contents")
				worker := main.Go("worker", func(t *vm.Thread) {
					cp := text.Copy(t)
					cp.Release(t)
				})
				main.Sleep(10)
				cp := text.Copy(main) // the Fig. 8 line 22 conflict
				cp.Release(main)
				main.Join(worker)
				text.Release(main)
			}
		},
	},
	"destructor": {
		desc: "§4.2.1: object deleted by a non-creator thread (false positive unless DR is on)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			base := cppmodel.NewClass("SessionBase", "session.h")
			derived := base.Derive("Session", "session.h")
			return func(main *vm.Thread) {
				v := main.VM()
				m1, m2 := v.NewMutex("a"), v.NewMutex("b")
				obj := rt.New(main, derived)
				use := func(m *vm.Mutex) func(*vm.Thread) {
					return func(t *vm.Thread) {
						m.Lock(t)
						obj.VCall(t, "touch", nil)
						m.Unlock(t)
					}
				}
				w1 := main.Go("w1", use(m1))
				w2 := main.Go("w2", use(m2))
				main.Join(w1)
				main.Join(w2)
				del := main.Go("deleter", func(t *vm.Thread) { rt.Delete(t, obj) })
				main.Join(del)
			}
		},
	},
	"threadpool": {
		desc: "Fig. 11: ownership transfer through a queue (false positive unless -edges full)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				v := main.VM()
				jobs := v.NewQueue("jobs", 0)
				done := v.NewQueue("done", 0)
				worker := main.Go("pool-worker", func(t *vm.Thread) {
					for {
						msg, ok := jobs.Get(t)
						if !ok {
							return
						}
						blk := msg.(*vm.Block)
						blk.Store32(t, 0, blk.Load32(t, 0)*2)
						done.Put(t, blk)
					}
				})
				b := main.Alloc(8, "job-data")
				b.Store32(main, 0, 21)
				jobs.Put(main, b)
				done.Get(main)
				jobs.Close(main)
				main.Join(worker)
			}
		},
	},
	"birthday": {
		desc: "§2.1: date-of-birth/age updated in separate critical sections (needs -highlevel)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				v := main.VM()
				mu := v.NewMutex("personMu")
				person := main.Alloc(8, "person")
				writer := main.Go("writer", func(t *vm.Thread) {
					defer t.Func("Person::setDateOfBirth", "person.cpp", 20)()
					mu.Lock(t)
					person.Store32(t, 0, 19800101)
					mu.Unlock(t)
					t.PopFrame()
					t.PushFrame("Person::setAge", "person.cpp", 30)
					mu.Lock(t)
					person.Store32(t, 4, 44)
					mu.Unlock(t)
				})
				reader := main.Go("reader", func(t *vm.Thread) {
					defer t.Func("Person::snapshot", "person.cpp", 50)()
					mu.Lock(t)
					person.Load32(t, 0)
					person.Load32(t, 4)
					mu.Unlock(t)
				})
				main.Join(writer)
				main.Join(reader)
			}
		},
	},
	"deadlock": {
		desc: "ABBA lock inversion (reported by -deadlocks even when it does not strike)",
		body: func(rt *cppmodel.Runtime) func(*vm.Thread) {
			return func(main *vm.Thread) {
				v := main.VM()
				m1, m2 := v.NewMutex("A"), v.NewMutex("B")
				gate := v.NewSemaphore("gate", 0)
				a := main.Go("a", func(t *vm.Thread) {
					m1.Lock(t)
					m2.Lock(t)
					m2.Unlock(t)
					m1.Unlock(t)
					gate.Post(t)
				})
				b := main.Go("b", func(t *vm.Thread) {
					gate.Wait(t)
					m2.Lock(t)
					m1.Lock(t)
					m1.Unlock(t)
					m2.Unlock(t)
				})
				main.Join(a)
				main.Join(b)
			}
		},
	},
}

func main() {
	var (
		workload  = flag.String("workload", "counter", "workload to run (see -list)")
		list      = flag.Bool("list", false, "list workloads")
		config    = flag.String("config", "hwlc+dr", "lockset configuration: original | hwlc | hwlc+dr")
		detector  = flag.String("detector", "lockset", "detector: lockset | djit | hybrid | none")
		edges     = flag.String("edges", "helgrind", "segment edges: helgrind | full")
		seed      = flag.Int64("seed", 1, "scheduler seed")
		deadlocks = flag.Bool("deadlocks", true, "attach the lock-order deadlock tool")
		memchk    = flag.Bool("memcheck", true, "attach the memcheck tool")
		highlevel = flag.Bool("highlevel", false, "attach the view-consistency (high-level race) checker")
		tools     = flag.String("tools", "", "run this comma-separated tool set concurrently in one pass (e.g. lockset,djit,deadlock; 'all' for every tool); overrides -detector and the attach flags")
		parallel  = flag.Int("parallel", 1, "shard the registered tools across N engine workers (>1 enables the parallel analysis engine)")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(workloads))
		for n := range workloads {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-12s %s\n", n, workloads[n].desc)
		}
		return
	}
	wl, ok := workloads[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "racecheck: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}

	opt := core.Options{Seed: *seed, Deadlocks: *deadlocks, Memcheck: *memchk, HighLevel: *highlevel, Parallel: *parallel}
	switch *detector {
	case "lockset":
		opt.Detector = core.DetectorLockset
	case "djit":
		opt.Detector = core.DetectorDJIT
	case "hybrid":
		opt.Detector = core.DetectorHybrid
	case "none":
		opt.Detector = core.DetectorNone
	default:
		fmt.Fprintf(os.Stderr, "racecheck: unknown detector %q\n", *detector)
		os.Exit(2)
	}
	annotate := false
	switch *config {
	case "original":
		opt.Lockset = lockset.ConfigOriginal()
	case "hwlc":
		opt.Lockset = lockset.ConfigHWLC()
	case "hwlc+dr":
		opt.Lockset = lockset.ConfigHWLCDR()
		annotate = true
	default:
		fmt.Fprintf(os.Stderr, "racecheck: unknown config %q\n", *config)
		os.Exit(2)
	}
	if *edges == "full" {
		opt.Lockset.Mask = trace.MaskFull
	}
	label := fmt.Sprintf("%s/%s", *detector, *config)
	if *tools != "" {
		// The registry path: every named tool runs concurrently over one
		// pass of the stream, using the configs assembled above.
		specs, err := opt.ParseTools(*tools)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racecheck:", err)
			os.Exit(2)
		}
		opt.Tools = specs
		label = fmt.Sprintf("tools=%s (%s)", *tools, *config)
	}

	rt := cppmodel.NewRuntime(cppmodel.Options{AnnotateDeletes: annotate, ForceNew: true})
	res, err := core.Run(opt, wl.body(rt))
	if err != nil {
		fmt.Fprintln(os.Stderr, "racecheck:", err)
		os.Exit(1)
	}
	mode := ""
	if *parallel > 1 {
		mode = fmt.Sprintf(", %d-shard engine", *parallel)
	}
	fmt.Printf("== workload %q under %s (seed %d%s)\n\n", *workload, label, *seed, mode)
	fmt.Print(res.Report())
	if res.Err != nil {
		fmt.Printf("\nguest execution ended abnormally: %v\n", res.Err)
	}
}
