// Command traceload is the load-generator client for the trace-ingest
// daemon (cmd/traced): it replays a corpus of recorded scenario traces over
// N concurrent connections, each as one live session, collects every
// returned report and measures aggregate ingest throughput.
//
// The corpus is either a directory of recorded *.trace files (e.g. the
// committed golden corpus under internal/scenario/testdata/golden) or a set
// of freshly generated scenarios (-generate). With -verify, every returned
// report is compared byte-for-byte against an in-process offline replay of
// the same trace — the live/offline conformance check, run against a real
// server over a real socket. With -aggregate, the run finishes by querying
// the server's cross-session aggregate report and asserting that this run's
// sessions all reported.
//
// Usage:
//
//	traceload -addr unix:/tmp/traced.sock -corpus internal/scenario/testdata/golden -sessions 16 -verify
//	traceload -inproc -generate 7 -sessions 64 -verify -aggregate
//
// -inproc starts a private in-process server instead of dialing one, which
// makes a self-contained smoke test (the CI ingest smoke drives a real
// traced process instead).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/scenario"
)

type traceEntry struct {
	name string
	log  []byte
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceload: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr      = flag.String("addr", "tcp:127.0.0.1:7433", "server address (network:address)")
		inproc    = flag.Bool("inproc", false, "start a private in-process server instead of dialing -addr")
		sessions  = flag.Int("sessions", 8, "concurrent sessions to run (the corpus is cycled)")
		corpus    = flag.String("corpus", "", "directory of recorded *.trace files to replay")
		generate  = flag.Int("generate", 4, "without -corpus: number of scenario seeds to generate (buggy variants)")
		schedSeed = flag.Int64("sched", 1, "scheduler seed for generated scenarios")
		chunk     = flag.Int("chunk", 64<<10, "events frame chunk size in bytes")
		toolList  = flag.String("tools", "all", "tool registry for -verify and -inproc (must match the server's)")
		verify    = flag.Bool("verify", false, "compare every returned report against an offline replay of the same trace")
		aggregate = flag.Bool("aggregate", false, "finish by querying and printing the server's aggregate report")
		parallel  = flag.Int("parallel", 1, "per-session engine shards for -inproc")
	)
	flag.Parse()

	tools, err := (core.Options{}).ToolFactory(*toolList)
	if err != nil {
		fail("%v", err)
	}

	traces, err := loadCorpus(*corpus, *generate, *schedSeed)
	if err != nil {
		fail("%v", err)
	}
	if len(traces) == 0 {
		fail("empty corpus")
	}

	target := *addr
	if *inproc {
		srv, err := ingest.NewServer(ingest.Config{Tools: tools, Shards: *parallel, MaxSessions: *sessions})
		if err != nil {
			fail("%v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("%v", err)
		}
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = "tcp:" + ln.Addr().String()
	}

	// Per-trace event counts, decoded once outside the timed window (the
	// streaming loop must time ingest work only).
	counts := make(map[string]int64, len(traces))
	for _, tr := range traces {
		n, err := scenario.CountEvents(tr.log)
		if err != nil {
			fail("corrupt trace %s: %v", tr.name, err)
		}
		counts[tr.name] = n
	}

	// Offline reference reports, computed once per distinct trace.
	want := make(map[string]string, len(traces))
	if *verify {
		for _, tr := range traces {
			pipe, err := engine.NewPipeline(engine.Options{Tools: tools()})
			if err != nil {
				fail("offline pipeline: %v", err)
			}
			if _, err := pipe.ReplayLog(bytes.NewReader(tr.log)); err != nil {
				pipe.Close()
				fail("offline replay %s: %v", tr.name, err)
			}
			col, err := pipe.Close()
			if err != nil {
				fail("offline close %s: %v", tr.name, err)
			}
			want[tr.name] = col.Format()
		}
	}

	fmt.Printf("traceload: %d session(s) over %d trace(s) against %s\n", *sessions, len(traces), target)
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var events int64
	var failures []string
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := traces[i%len(traces)]
			c, err := ingest.Dial(target)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d: dial: %v", i, err))
				mu.Unlock()
				return
			}
			defer c.Close()
			report, err := c.StreamTrace(fmt.Sprintf("load-%d-%s", i, tr.name), tr.log, *chunk)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d (%s): %v", i, tr.name, err))
				mu.Unlock()
				return
			}
			mu.Lock()
			events += counts[tr.name]
			mu.Unlock()
			if *verify && report != want[tr.name] {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d (%s): live report differs from offline replay", i, tr.name))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)

	sort.Strings(failures)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "traceload:", f)
	}
	fmt.Printf("traceload: %d/%d session(s) ok, %d event(s) in %v (%.0f events/sec)\n",
		*sessions-len(failures), *sessions, events, dur.Round(time.Millisecond), float64(events)/dur.Seconds())
	if *verify && len(failures) == 0 {
		fmt.Println("traceload: verify ok — every live report byte-identical to its offline replay")
	}

	if *aggregate {
		c, err := ingest.Dial(target)
		if err != nil {
			fail("aggregate: %v", err)
		}
		text, err := c.Aggregate()
		c.Close()
		if err != nil {
			fail("aggregate: %v", err)
		}
		fmt.Print(text)
		// This client knows how many sessions it just completed; the
		// aggregate must account for at least that many reported sessions
		// (a long-running daemon may have served other clients too).
		reported, err := parseReported(text)
		if err != nil {
			fail("aggregate: %v", err)
		}
		if ok := *sessions - len(failures); reported < ok {
			fail("aggregate reports %d session(s), but this run alone completed %d", reported, ok)
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// parseReported extracts the reported-session count from the aggregate
// header line ("== ingest aggregate: N session(s) — R reported, ...").
func parseReported(text string) (int, error) {
	m := regexp.MustCompile(`(\d+) reported`).FindStringSubmatch(text)
	if m == nil {
		return 0, fmt.Errorf("no reported count in aggregate header")
	}
	return strconv.Atoi(m[1])
}

// loadCorpus reads *.trace files from dir, or generates scenario traces.
func loadCorpus(dir string, generate int, schedSeed int64) ([]traceEntry, error) {
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no *.trace files in %s", dir)
		}
		sort.Strings(paths)
		var out []traceEntry
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			out = append(out, traceEntry{name: filepath.Base(p), log: data})
		}
		return out, nil
	}
	var out []traceEntry
	for seed := int64(1); seed <= int64(generate); seed++ {
		s := scenario.Generate(scenario.GenConfig{Seed: seed})
		_, log, err := scenario.Record(s, true, schedSeed)
		if err != nil {
			return nil, err
		}
		out = append(out, traceEntry{name: s.Name(), log: log})
	}
	return out, nil
}
