// Command traceload is the load-generator client for the trace-ingest
// daemon (cmd/traced): it replays a corpus of recorded scenario traces over
// N concurrent connections, each as one live session, collects every
// returned report and measures aggregate ingest throughput.
//
// The corpus is either a directory of recorded *.trace files (e.g. the
// committed golden corpus under internal/scenario/testdata/golden) or a set
// of freshly generated scenarios (-generate); generated scenarios stream
// their interned stack/block tables as metadata frames, so the server
// renders their reports fully resolved. With -verify, every returned report
// is compared byte-for-byte against an in-process offline replay of the
// same trace (same resolver tables) — the live/offline conformance check,
// run against a real server over a real socket — and every incremental
// snapshot the server took of a session (traced -report-interval) is checked
// to be a prefix-consistent subset of that session's final report. With
// -aggregate, the run finishes by querying the server's cross-session
// aggregate report and asserting that this run's sessions all reported.
//
// By default each session streams closed-loop (as fast as the server drains
// it). -rate switches to open-loop: the run targets a total events/sec
// budget split across sessions, each chunk is scheduled on a fixed timeline,
// and the lateness of every send — how long the schedule slipped because the
// server's backpressure held the socket — is summarised as a queueing-delay
// distribution, making overload behaviour measurable.
//
// -flood is the overload counterpart: run far more sessions than the
// server's -max-sessions against a daemon with bounded admission. A session
// the server rejects with a typed busy error counts as shed load rather than
// failure (optionally redialed after the server's retry-after hint, up to
// -flood-retries attempts); the run summarises completed vs rejected
// sessions and exits zero when every session either completed or was cleanly
// rejected.
//
// Usage:
//
//	traceload -addr unix:/tmp/traced.sock -corpus internal/scenario/testdata/golden -sessions 16 -verify
//	traceload -inproc -generate 7 -sessions 64 -verify -aggregate
//	traceload -inproc -generate 4 -sessions 8 -rate 50000 -verify
//	traceload -addr unix:/tmp/traced.sock -sessions 64 -flood -flood-retries 2
//	traceload -addr tcp:127.0.0.1:7433 -query stats
//
// -query runs one standalone query exchange against a live daemon ("stats"
// fetches the server's metrics snapshot, "aggregate"/"sessions"/"session
// <name>"/"snapshots <name>" as documented on the ingest client), prints the
// response and exits without streaming any load.
//
// -inproc starts a private in-process server instead of dialing one, which
// makes a self-contained smoke test (the CI ingest smoke drives a real
// traced process instead).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

type traceEntry struct {
	name string
	log  []byte
	md   *tracelog.Metadata // interned stack/block tables (generated corpus only)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceload: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr      = flag.String("addr", "tcp:127.0.0.1:7433", "server address (network:address)")
		inproc    = flag.Bool("inproc", false, "start a private in-process server instead of dialing -addr")
		sessions  = flag.Int("sessions", 8, "concurrent sessions to run (the corpus is cycled)")
		corpus    = flag.String("corpus", "", "directory of recorded *.trace files to replay")
		generate  = flag.Int("generate", 4, "without -corpus: number of scenario seeds to generate (buggy variants)")
		schedSeed = flag.Int64("sched", 1, "scheduler seed for generated scenarios")
		chunk     = flag.Int("chunk", 64<<10, "events frame chunk size in bytes (closed loop)")
		rate      = flag.Float64("rate", 0, "open-loop target events/sec across all sessions (0 = closed loop)")
		toolList  = flag.String("tools", "all", "tool registry for -verify and -inproc (must match the server's)")
		verify    = flag.Bool("verify", false, "compare every returned report (and every server-side incremental snapshot) against an offline replay of the same trace")
		aggregate = flag.Bool("aggregate", false, "finish by querying and printing the server's aggregate report")
		parallel  = flag.Int("parallel", 1, "per-session engine shards for -inproc")
		interval  = flag.Duration("report-interval", 0, "incremental-report interval for -inproc (0 disables)")
		query     = flag.String("query", "", "run one query against -addr, print the response, and exit (e.g. stats, aggregate, sessions)")
		flood     = flag.Bool("flood", false, "overload mode: a session the server rejects with a typed busy error counts as shed load, not failure (disables -verify comparison; degraded reports differ from offline replays by design)")
		retries   = flag.Int("flood-retries", 0, "redial attempts after a busy rejection, honouring the server's retry-after hint")
		cooperate = flag.Bool("cooperative", false, "share one backoff governor across all sessions: any busy rejection lowers every session's send rate (and paces redials) until sessions succeed again")
	)
	flag.Parse()

	var gov *ingest.Backoff
	if *cooperate {
		gov = ingest.NewBackoff(0)
	}

	if *query != "" {
		c, err := ingest.Dial(*addr)
		if err != nil {
			fail("query: %v", err)
		}
		text, err := c.Query(*query)
		c.Close()
		if err != nil {
			fail("query: %v", err)
		}
		fmt.Print(text)
		return
	}

	tools, err := (core.Options{}).ToolFactory(*toolList)
	if err != nil {
		fail("%v", err)
	}

	traces, err := loadCorpus(*corpus, *generate, *schedSeed)
	if err != nil {
		fail("%v", err)
	}
	if len(traces) == 0 {
		fail("empty corpus")
	}

	target := *addr
	if *inproc {
		srv, err := ingest.NewServer(ingest.Config{
			Tools: tools, Shards: *parallel, MaxSessions: *sessions,
			ReportInterval: *interval,
		})
		if err != nil {
			fail("%v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("%v", err)
		}
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = "tcp:" + ln.Addr().String()
	}

	// Per-trace event counts, decoded once outside the timed window (the
	// streaming loop must time ingest work only). Open-loop pacing also
	// needs every event's byte boundary.
	counts := make(map[string]int64, len(traces))
	offsets := make(map[string][]int64, len(traces))
	for _, tr := range traces {
		n, err := scenario.CountEvents(tr.log)
		if err != nil {
			fail("corrupt trace %s: %v", tr.name, err)
		}
		counts[tr.name] = n
		if *rate > 0 {
			offs, err := eventOffsets(tr.log)
			if err != nil {
				fail("offsets for %s: %v", tr.name, err)
			}
			offsets[tr.name] = offs
		}
	}

	// Offline reference reports and site manifests, computed once per
	// distinct trace with the same resolver tables the server accumulates.
	want := make(map[string]string, len(traces))
	wantManifest := make(map[string]string, len(traces))
	if *verify {
		for _, tr := range traces {
			pipe, err := engine.NewPipeline(engine.Options{Tools: tools(), Resolver: scenario.Resolver(tr.md)})
			if err != nil {
				fail("offline pipeline: %v", err)
			}
			if _, err := pipe.ReplayLog(bytes.NewReader(tr.log)); err != nil {
				pipe.Close()
				fail("offline replay %s: %v", tr.name, err)
			}
			col, err := pipe.Close()
			if err != nil {
				fail("offline close %s: %v", tr.name, err)
			}
			want[tr.name] = col.Format()
			wantManifest[tr.name] = col.Manifest()
		}
	}

	perSession := *rate / float64(*sessions)
	if *rate > 0 {
		fmt.Printf("traceload: open loop at %.0f events/sec total (%.0f/session)\n", *rate, perSession)
	}
	fmt.Printf("traceload: %d session(s) over %d trace(s) against %s\n", *sessions, len(traces), target)
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var events int64
	var failures []string
	var delays []time.Duration
	var snapsChecked, snapsSkipped int
	var rejected int
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := traces[i%len(traces)]
			if *flood {
				wasRejected, err := streamFlood(target, fmt.Sprintf("load-%d-%s", i, tr.name), tr, *chunk, *retries, gov)
				mu.Lock()
				switch {
				case err != nil:
					failures = append(failures, fmt.Sprintf("session %d (%s): %v", i, tr.name, err))
				case wasRejected:
					rejected++
				default:
					events += counts[tr.name]
				}
				mu.Unlock()
				return
			}
			c, err := ingest.Dial(target)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d: dial: %v", i, err))
				mu.Unlock()
				return
			}
			defer c.Close()
			if gov != nil {
				c.SetPacer(gov)
			}
			name := fmt.Sprintf("load-%d-%s", i, tr.name)
			var rep string
			var sessDelays []time.Duration
			if *rate > 0 {
				rep, sessDelays, err = streamOpenLoop(c, name, tr, offsets[tr.name], perSession)
			} else {
				rep, err = c.StreamTraceMeta(name, tr.md, tr.log, *chunk)
			}
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d (%s): %v", i, tr.name, err))
				mu.Unlock()
				return
			}
			mu.Lock()
			events += counts[tr.name]
			delays = append(delays, sessDelays...)
			mu.Unlock()
			if !*verify {
				return
			}
			if rep != want[tr.name] {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d (%s): live report differs from offline replay", i, tr.name))
				mu.Unlock()
			}
			checked, skipped, err := verifySnapshots(target, name, wantManifest[tr.name])
			mu.Lock()
			snapsChecked += checked
			if skipped {
				snapsSkipped++
			}
			if err != nil {
				failures = append(failures, fmt.Sprintf("session %d (%s): %v", i, tr.name, err))
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)

	sort.Strings(failures)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "traceload:", f)
	}
	fmt.Printf("traceload: %d/%d session(s) ok, %d event(s) in %v (%.0f events/sec)\n",
		*sessions-len(failures)-rejected, *sessions, events, dur.Round(time.Millisecond), float64(events)/dur.Seconds())
	if *flood {
		fmt.Printf("traceload: flood: %d session(s) rejected busy by admission\n", rejected)
		if gov != nil {
			fmt.Printf("traceload: cooperative backoff settled at %v redial delay\n", gov.Delay())
		}
	}
	if *rate > 0 {
		fmt.Println("traceload:", delaySummary(delays))
	}
	if *verify && len(failures) == 0 {
		fmt.Printf("traceload: verify ok — every live report byte-identical to its offline replay; %d incremental snapshot(s) prefix-consistent", snapsChecked)
		if snapsSkipped > 0 {
			fmt.Printf(" (%d session(s) already folded, skipped)", snapsSkipped)
		}
		fmt.Println()
	}

	if *aggregate {
		c, err := ingest.Dial(target)
		if err != nil {
			fail("aggregate: %v", err)
		}
		text, err := c.Aggregate()
		c.Close()
		if err != nil {
			fail("aggregate: %v", err)
		}
		fmt.Print(text)
		// This client knows how many sessions it just completed; the
		// aggregate must account for at least that many reported sessions
		// (a long-running daemon may have served other clients too).
		reported, err := parseReported(text)
		if err != nil {
			fail("aggregate: %v", err)
		}
		if ok := *sessions - len(failures) - rejected; reported < ok {
			fail("aggregate reports %d session(s), but this run alone completed %d", reported, ok)
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// streamOpenLoop runs one session at a fixed events/sec target: event chunks
// are scheduled on a strict timeline from session start, and each send's
// lateness against its schedule — the time the server's backpressure (or our
// own scheduling debt) held it up — is recorded as a queueing-delay sample.
func streamOpenLoop(c *ingest.Client, name string, tr traceEntry, offs []int64, perSec float64) (string, []time.Duration, error) {
	if err := c.Hello(name); err != nil {
		return "", nil, err
	}
	if err := c.SendMetadata(tr.md); err != nil {
		return "", nil, err
	}
	nev := len(offs) - 1
	// Chunk the rate into ~5ms ticks of at least one event, then recompute
	// the tick from the rounded chunk so per/tick equals the requested rate
	// exactly — flooring the chunk alone would undershoot the target by up
	// to 50% at rates that are not tick-multiples.
	per := int(perSec*0.005 + 0.5)
	if per < 1 {
		per = 1
	}
	tick := time.Duration(float64(per) / perSec * float64(time.Second))
	var delays []time.Duration
	next := time.Now()
	for a := 0; a < nev; a += per {
		b := a + per
		if b > nev {
			b = nev
		}
		next = next.Add(tick)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if err := c.SendEvents(tr.log[offs[a]:offs[b]]); err != nil {
			return "", delays, err
		}
		if d := time.Since(next); d > 0 {
			delays = append(delays, d)
		} else {
			delays = append(delays, 0)
		}
	}
	rep, err := c.Finish()
	return rep, delays, err
}

// streamFlood runs one closed-loop session expecting admission pressure: a
// typed busy rejection is shed load, not failure. After each rejection it
// sleeps the server's retry-after hint (bounded to a second) and redials, up
// to retries extra attempts; a session still rejected then reports rejected.
// With a cooperative governor attached, the rejection instead feeds the
// shared backoff — every concurrent session's send rate drops, the redial
// honours the governed delay, and a success recovers it — so the flood backs
// off as a fleet instead of each session hammering the gate independently.
func streamFlood(target, name string, tr traceEntry, chunk, retries int, gov *ingest.Backoff) (rejected bool, err error) {
	for attempt := 0; ; attempt++ {
		c, err := ingest.Dial(target)
		if err != nil {
			return false, fmt.Errorf("dial: %w", err)
		}
		if gov != nil {
			c.SetPacer(gov)
		}
		_, err = c.StreamTraceMeta(name, tr.md, tr.log, chunk)
		c.Close()
		if err == nil {
			if gov != nil {
				gov.OnSuccess()
			}
			return false, nil
		}
		if !errors.Is(err, tracelog.ErrBusy) {
			return false, err
		}
		if gov != nil {
			gov.OnBusy(err)
			if attempt >= retries {
				return true, nil
			}
			gov.Wait()
			continue
		}
		if attempt >= retries {
			return true, nil
		}
		backoff := 50 * time.Millisecond
		if hint, ok := tracelog.RetryAfterHint(err); ok && hint < time.Second {
			backoff = hint
		}
		time.Sleep(backoff)
	}
}

// eventOffsets computes the cumulative byte offset after every event of a
// binary trace log, by decoding it and re-encoding each event (the encoding
// round-trips byte-identically, which the final length check enforces).
// offs[0] is 0 and offs[i] is the end of event i-1, so events [a,b) occupy
// log[offs[a]:offs[b]].
func eventOffsets(log []byte) ([]int64, error) {
	dec := tracelog.NewDecoder(bytes.NewReader(log))
	var cw countWriter
	rec := tracelog.NewRecorder(&cw)
	offs := []int64{0}
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ev.Deliver(rec)
		if err := rec.Flush(); err != nil {
			return nil, err
		}
		offs = append(offs, cw.n)
	}
	if cw.n != int64(len(log)) {
		return nil, fmt.Errorf("re-encoded stream is %d bytes, trace is %d — encoding drifted", cw.n, len(log))
	}
	return offs, nil
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// delaySummary renders the queueing-delay distribution of an open-loop run.
func delaySummary(delays []time.Duration) string {
	if len(delays) == 0 {
		return "queueing delay: no samples"
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	var sum time.Duration
	for _, d := range delays {
		sum += d
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(delays)-1))
		return delays[i]
	}
	return fmt.Sprintf("queueing delay over %d send(s): mean=%v p50=%v p95=%v p99=%v max=%v",
		len(delays), (sum / time.Duration(len(delays))).Round(time.Microsecond),
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), delays[len(delays)-1].Round(time.Microsecond))
}

// verifySnapshots fetches the server-side incremental snapshot manifests of
// one completed session and checks each is a prefix-consistent subset of the
// trace's offline final manifest. A session the retention policy has already
// folded away is reported as skipped, not failed.
func verifySnapshots(target, session, finalManifest string) (checked int, skipped bool, err error) {
	c, err := ingest.Dial(target)
	if err != nil {
		return 0, false, fmt.Errorf("snapshots dial: %w", err)
	}
	defer c.Close()
	text, err := c.Snapshots(session)
	if err != nil {
		// Folded away by retention, or held on a backend analyzer behind a
		// router that redirects per-session queries: the report byte-identity
		// check already passed, so the snapshot check is skipped, not failed.
		if errors.Is(err, tracelog.ErrRemote) &&
			(strings.Contains(err.Error(), "unknown session") ||
				strings.Contains(err.Error(), "backend analyzers")) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("snapshots query: %w", err)
	}
	for i, manifest := range parseSnapshotBlocks(text) {
		if err := report.PrefixConsistent(manifest, finalManifest); err != nil {
			return checked, false, fmt.Errorf("incremental snapshot %d not a prefix of the final report: %w", i+1, err)
		}
		checked++
	}
	return checked, false, nil
}

// parseSnapshotBlocks splits a "snapshots <name>" response into one manifest
// string per snapshot ("== snapshot" headers delimit blocks; other "=="
// lines are chrome).
func parseSnapshotBlocks(text string) []string {
	var blocks []string
	cur := -1
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "== snapshot"):
			blocks = append(blocks, "")
			cur = len(blocks) - 1
		case strings.HasPrefix(line, "=="), line == "":
		case cur >= 0:
			blocks[cur] += line + "\n"
		}
	}
	return blocks
}

// parseReported extracts the reported-session count from the aggregate
// header line ("== ingest aggregate: N session(s) — R reported, ...").
func parseReported(text string) (int, error) {
	m := regexp.MustCompile(`(\d+) reported`).FindStringSubmatch(text)
	if m == nil {
		return 0, fmt.Errorf("no reported count in aggregate header")
	}
	return strconv.Atoi(m[1])
}

// loadCorpus reads *.trace files from dir, or generates scenario traces
// (capturing each recording VM's stack/block tables as stream metadata).
func loadCorpus(dir string, generate int, schedSeed int64) ([]traceEntry, error) {
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no *.trace files in %s", dir)
		}
		sort.Strings(paths)
		var out []traceEntry
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			out = append(out, traceEntry{name: filepath.Base(p), log: data})
		}
		return out, nil
	}
	var out []traceEntry
	for seed := int64(1); seed <= int64(generate); seed++ {
		s := scenario.Generate(scenario.GenConfig{Seed: seed})
		v, log, err := scenario.Record(s, true, schedSeed)
		if err != nil {
			return nil, err
		}
		out = append(out, traceEntry{name: s.Name(), log: log, md: scenario.CaptureMetadata(v)})
	}
	return out, nil
}
