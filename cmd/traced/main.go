// Command traced is the live trace-ingest daemon: the long-running analysis
// server of internal/ingest. It listens on a unix socket or TCP address,
// accepts any number of concurrent client connections each streaming one
// length-framed trace (see the tracelog frame layer), analyses every session
// through its own engine pipeline under the registered tools, and answers
// each client with the rendered report for exactly its stream.
//
// The daemon shape mirrors the paper's deployment: the tools watched a
// long-running SIP server under live traffic, not a one-shot replay. A
// client is cmd/traceload (a replay load generator), or anything speaking
// the frame protocol.
//
// The daemon is built for never-ending streams: -report-interval enables
// periodic incremental per-session reports (engine snapshots, served to
// "session <name>" / "snapshots <name>" query connections while the stream
// is still flowing), -retain bounds the registry by folding old terminal
// sessions into the running aggregate, and -idle-timeout fails sessions
// whose clients stall so they stop holding analysis slots. Sessions that
// stream metadata frames get their reports fully stack-resolved.
//
// Under overload the daemon degrades instead of stalling: -admit-timeout and
// -admit-rate bound session admission (a rejected client receives a typed
// busy error frame with a retry-after hint instead of parking on the session
// cap), -sampling and -ladder adaptively trade analysis coverage for
// survival as pressure rises — with the exact shed counts stamped into every
// degraded report — and -fold-cap bounds the memory of the long-run
// retention fold.
//
// The daemon observes itself through an internal/obs metrics registry,
// always on (instrumentation is allocation-free and never perturbs
// analysis). The series are served three ways: a "stats" query connection
// (traceload -query stats), an optional -http endpoint exposing GET /metrics
// (Prometheus text format), GET /healthz (503 while draining) and
// net/http/pprof under /debug/pprof/, and an optional -stats-interval
// one-line stderr dump for log scraping.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting,
// flushes in-flight sessions within the grace period, then prints a drain
// summary (sessions flushed vs force-failed) and a final metrics snapshot to
// stderr and the cross-session aggregate report to stdout. The same
// aggregate is available at any time to an "aggregate" query connection
// (traceload -aggregate).
//
// Usage:
//
//	traced -listen unix:/tmp/traced.sock
//	traced -listen tcp:127.0.0.1:7433 -tools lockset,memcheck -parallel 4
//	traced -listen tcp:127.0.0.1:7433 -report-interval 500ms -retain 128 -idle-timeout 30s
//	traced -listen tcp:127.0.0.1:7433 -http 127.0.0.1:9090 -stats-interval 10s
//	traced -listen unix:/tmp/traced.sock -max-sessions 4 -admit-timeout 500ms -sampling -ladder
//
// # Multi-process tier
//
// The daemon also runs as either half of the router → N backends tier
// (internal/ingest router layer). A backend is a normal daemon started with
// -backend: it additionally accepts assign-opened sessions from a router
// (answering with a structured backend-report) and backend-stats census
// probes. A router is started with -router -backends spec,spec,...: it
// analyses nothing itself, shards every client session across the live
// backends by rendezvous hashing, forwards frames verbatim, and serves the
// fleet aggregate — the fold over every backend's results, byte-identical to
// a single process analysing the same sessions. One backend dying fails only
// its in-flight sessions (counted as lost in the aggregate, never silently);
// future sessions re-shard across the survivors.
//
//	traced -backend -listen unix:/tmp/be1.sock &
//	traced -backend -listen unix:/tmp/be2.sock &
//	traced -router -backends unix:/tmp/be1.sock,unix:/tmp/be2.sock -listen tcp:127.0.0.1:7433
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
)

func main() {
	var (
		listen         = flag.String("listen", "tcp:127.0.0.1:7433", "listen address (network:address; unix:/path or tcp:host:port)")
		toolList       = flag.String("tools", "all", "per-session tool registry (comma-separated, 'all' for every tool)")
		parallel       = flag.Int("parallel", 1, "per-session engine shards (<= 1 analyses each session sequentially)")
		maxSessions    = flag.Int("max-sessions", 64, "concurrently analysed session cap")
		grace          = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight sessions")
		reportInterval = flag.Duration("report-interval", 0, "periodic incremental session reports (0 disables; served to 'session'/'snapshots' queries)")
		retain         = flag.Int("retain", 0, "terminal sessions retained individually before being folded into the aggregate (0 keeps all)")
		idleTimeout    = flag.Duration("idle-timeout", 0, "fail a session whose connection goes idle for this long (0 disables)")
		httpAddr       = flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this host:port (empty disables)")
		statsInterval  = flag.Duration("stats-interval", 0, "print a one-line metrics dump to stderr this often (0 disables)")
		admitTimeout   = flag.Duration("admit-timeout", 0, "reject a session with a typed busy error if no analysis slot frees within this long (0 waits until shutdown)")
		admitRate      = flag.Float64("admit-rate", 0, "token-bucket admission pacing, sessions/second (0 disables; beyond the bucket, sessions are rejected busy)")
		admitBurst     = flag.Int("admit-burst", 0, "admission token-bucket burst (0 defaults to -max-sessions)")
		sampling       = flag.Bool("sampling", false, "adaptively sample access events from sessions admitted under overload pressure (exact shed counts stamped into reports)")
		ladder         = flag.Bool("ladder", false, "shed auxiliary tools (highlevel, then deadlock) from sessions admitted under overload pressure")
		foldCap        = flag.Int("fold-cap", 0, "bound the distinct warning sites the retention fold keeps; the aggregate discloses what was compacted (0 keeps all)")
		adaptiveSnaps  = flag.Bool("adaptive-snapshots", false, "defer -report-interval snapshot ticks while overload pressure is high (deferral counts disclosed in snapshot listings)")
		backendMode    = flag.Bool("backend", false, "run as a backend analyzer: additionally accept router-assigned sessions and census probes")
		routerMode     = flag.Bool("router", false, "run as a session router over -backends instead of analysing locally")
		backendSpecs   = flag.String("backends", "", "comma-separated backend specs for -router (network:address each)")
	)
	flag.Parse()

	if *routerMode {
		runRouter(*listen, *backendSpecs, *idleTimeout, *grace, *httpAddr, *statsInterval)
		return
	}
	if *backendSpecs != "" {
		fmt.Fprintln(os.Stderr, "traced: -backends requires -router")
		os.Exit(2)
	}

	tools, err := (core.Options{}).ToolFactory(*toolList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	srv, err := ingest.NewServer(ingest.Config{
		Tools:          tools,
		Shards:         *parallel,
		MaxSessions:    *maxSessions,
		ReportInterval: *reportInterval,
		RetainSessions: *retain,
		IdleTimeout:    *idleTimeout,
		Metrics:        reg,

		AdmitTimeout:           *admitTimeout,
		AdmitRate:              *admitRate,
		AdmitBurst:             *admitBurst,
		AdaptiveSampling:       *sampling,
		DegradationLadder:      *ladder,
		FoldSiteCap:            *foldCap,
		AdaptiveReportInterval: *adaptiveSnaps,
		BackendMode:            *backendMode,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(2)
	}
	ln, err := ingest.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(1)
	}
	role := ""
	if *backendMode {
		role = ", backend mode"
	}
	fmt.Printf("traced: listening on %s (tools %s, %d shard(s)/session, %d session slot(s)%s)\n",
		*listen, *toolList, *parallel, *maxSessions, role)

	if *httpAddr != "" {
		hsrv, err := serveHTTP(*httpAddr, reg, srv.Draining)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traced:", err)
			os.Exit(1)
		}
		defer hsrv.Close()
		fmt.Printf("traced: metrics on http://%s/metrics (healthz, pprof alongside)\n", *httpAddr)
	}

	if *statsInterval > 0 {
		tick := time.NewTicker(*statsInterval)
		defer tick.Stop()
		go func() {
			for range tick.C {
				fmt.Fprintf(os.Stderr, "traced: stats %s\n", reg.OneLine())
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("traced: %v — draining in-flight sessions (grace %v)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "traced: forced shutdown:", err)
		}
		<-done
		drain := srv.LastDrain()
		fmt.Fprintf(os.Stderr, "traced: drain: %d in-flight session(s) — %d flushed, %d force-failed\n",
			drain.InFlight, drain.Flushed, drain.Forced)
		fmt.Fprintf(os.Stderr, "traced: final stats\n%s", reg.Snapshot())
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "traced: serve:", err)
			os.Exit(1)
		}
	}
	fmt.Print(srv.Aggregate().Format())
}

// runRouter runs the session-sharding front tier: no local analysis, every
// client session forwarded to one of the -backends processes, the fleet
// aggregate printed on shutdown exactly like the single-process daemon prints
// its own.
func runRouter(listen, specs string, idleTimeout, grace time.Duration, httpAddr string, statsInterval time.Duration) {
	var backends []string
	for _, spec := range strings.Split(specs, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			backends = append(backends, spec)
		}
	}
	reg := obs.NewRegistry()
	rt, err := ingest.NewRouter(ingest.RouterConfig{
		Backends:    backends,
		IdleTimeout: idleTimeout,
		Metrics:     reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(2)
	}
	ln, err := ingest.Listen(listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(1)
	}
	fmt.Printf("traced: routing on %s across %d backend(s): %s\n", listen, len(backends), strings.Join(backends, ", "))

	if httpAddr != "" {
		hsrv, err := serveHTTP(httpAddr, reg, rt.Draining)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traced:", err)
			os.Exit(1)
		}
		defer hsrv.Close()
		fmt.Printf("traced: metrics on http://%s/metrics (healthz, pprof alongside)\n", httpAddr)
	}
	if statsInterval > 0 {
		tick := time.NewTicker(statsInterval)
		defer tick.Stop()
		go func() {
			for range tick.C {
				fmt.Fprintf(os.Stderr, "traced: stats %s\n", reg.OneLine())
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- rt.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("traced: %v — draining forwarded sessions (grace %v)\n", s, grace)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "traced: forced shutdown:", err)
		}
		<-done
		fmt.Fprintf(os.Stderr, "traced: final stats\n%s", reg.Snapshot())
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "traced: serve:", err)
			os.Exit(1)
		}
	}
	fmt.Print(rt.FleetAggregate().Format())
}

// serveHTTP starts the observability endpoint: Prometheus metrics, a
// drain-aware health check, and the stdlib pprof profiles. It is a private
// mux (not http.DefaultServeMux) so nothing else can leak handlers onto the
// daemon's diagnostic port.
func serveHTTP(addr string, reg *obs.Registry, draining func() bool) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hln, err := ingest.Listen("tcp:" + addr)
	if err != nil {
		return nil, fmt.Errorf("http: %w", err)
	}
	hsrv := &http.Server{Handler: mux}
	go hsrv.Serve(hln)
	return hsrv, nil
}
