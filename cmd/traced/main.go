// Command traced is the live trace-ingest daemon: the long-running analysis
// server of internal/ingest. It listens on a unix socket or TCP address,
// accepts any number of concurrent client connections each streaming one
// length-framed trace (see the tracelog frame layer), analyses every session
// through its own engine pipeline under the registered tools, and answers
// each client with the rendered report for exactly its stream.
//
// The daemon shape mirrors the paper's deployment: the tools watched a
// long-running SIP server under live traffic, not a one-shot replay. A
// client is cmd/traceload (a replay load generator), or anything speaking
// the frame protocol.
//
// The daemon is built for never-ending streams: -report-interval enables
// periodic incremental per-session reports (engine snapshots, served to
// "session <name>" / "snapshots <name>" query connections while the stream
// is still flowing), -retain bounds the registry by folding old terminal
// sessions into the running aggregate, and -idle-timeout fails sessions
// whose clients stall so they stop holding analysis slots. Sessions that
// stream metadata frames get their reports fully stack-resolved.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting,
// flushes in-flight sessions within the grace period, then prints the
// cross-session aggregate report to stdout. The same aggregate is available
// at any time to an "aggregate" query connection (traceload -aggregate).
//
// Usage:
//
//	traced -listen unix:/tmp/traced.sock
//	traced -listen tcp:127.0.0.1:7433 -tools lockset,memcheck -parallel 4
//	traced -listen tcp:127.0.0.1:7433 -report-interval 500ms -retain 128 -idle-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
)

func main() {
	var (
		listen         = flag.String("listen", "tcp:127.0.0.1:7433", "listen address (network:address; unix:/path or tcp:host:port)")
		toolList       = flag.String("tools", "all", "per-session tool registry (comma-separated, 'all' for every tool)")
		parallel       = flag.Int("parallel", 1, "per-session engine shards (<= 1 analyses each session sequentially)")
		maxSessions    = flag.Int("max-sessions", 64, "concurrently analysed session cap")
		grace          = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight sessions")
		reportInterval = flag.Duration("report-interval", 0, "periodic incremental session reports (0 disables; served to 'session'/'snapshots' queries)")
		retain         = flag.Int("retain", 0, "terminal sessions retained individually before being folded into the aggregate (0 keeps all)")
		idleTimeout    = flag.Duration("idle-timeout", 0, "fail a session whose connection goes idle for this long (0 disables)")
	)
	flag.Parse()

	tools, err := (core.Options{}).ToolFactory(*toolList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(2)
	}

	srv, err := ingest.NewServer(ingest.Config{
		Tools:          tools,
		Shards:         *parallel,
		MaxSessions:    *maxSessions,
		ReportInterval: *reportInterval,
		RetainSessions: *retain,
		IdleTimeout:    *idleTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(2)
	}
	ln, err := ingest.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(1)
	}
	fmt.Printf("traced: listening on %s (tools %s, %d shard(s)/session, %d session slot(s))\n",
		*listen, *toolList, *parallel, *maxSessions)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("traced: %v — draining in-flight sessions (grace %v)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "traced: forced shutdown:", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "traced: serve:", err)
			os.Exit(1)
		}
	}
	fmt.Print(srv.Aggregate().Format())
}
