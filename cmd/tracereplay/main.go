// Command tracereplay demonstrates offline (post-mortem) analysis (§2.2):
// it records the execution trace of a SIP test case to a binary log, then
// replays the SAME interleaving into all three detector configurations —
// something an on-the-fly tool cannot do, at the §4.5 cost of storing the
// trace.
//
// With -tools the replay runs the registry's one-pass mode instead: every
// named tool — several race detectors and all auxiliary checkers — analyses
// the trace concurrently over a SINGLE decode, sequentially or sharded.
//
// Usage:
//
//	tracereplay                     # record T2 in memory, replay 3 configs
//	tracereplay -case T5 -log /tmp/t5.trace
//	tracereplay -parallel 8         # replay through the sharded engine
//	tracereplay -tools all -parallel 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/cppmodel"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/libc"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vm"
)

func main() {
	var (
		caseID   = flag.String("case", "T2", "test case T1..T8")
		seed     = flag.Int64("seed", 1, "scheduler seed")
		logPath  = flag.String("log", "", "write the binary trace to this file (default: in memory)")
		tools    = flag.String("tools", "", "replay once through this comma-separated tool set in one decode (e.g. lockset,djit,deadlock; 'all' for every tool) instead of the per-config loop")
		parallel = flag.Int("parallel", 1, "replay through the sharded analysis engine with N workers (>1)")
	)
	flag.Parse()

	tc, ok := sipp.CaseByID(*caseID)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracereplay: unknown case %q\n", *caseID)
		os.Exit(2)
	}

	// Phase 1: record. Only the recorder is attached — the execution pays
	// the logging cost, not the analysis cost.
	var sinkBuf bytes.Buffer
	var out io.Writer = &sinkBuf
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracereplay:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(&sinkBuf, f)
	}
	rec := tracelog.NewRecorder(out)
	v := vm.New(vm.Options{Seed: *seed, Quantum: 3})
	v.AddTool(rec)
	rt := cppmodel.NewRuntime(cppmodel.Options{AnnotateDeletes: true, ForceNew: true})
	err := v.Run(func(main *vm.Thread) {
		lc := libc.New(main)
		srv := sip.NewServer(v, rt, lc, sip.Config{Bugs: sip.PaperBugs()})
		srv.Start(main)
		sink := tc.Drive(main, srv, srv.Config().Domains)
		srv.Stop(main)
		main.Join(sink)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay: record:", err)
		os.Exit(1)
	}
	if err := rec.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay: flush:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s: %d events, %d bytes (%.1f bytes/event)\n\n",
		tc.ID, rec.Events(), sinkBuf.Len(), float64(sinkBuf.Len())/float64(rec.Events()))

	if *tools != "" {
		// One-pass mode: a single decode fans out to every named tool.
		specs, err := core.Options{}.ParseTools(*tools)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracereplay:", err)
			os.Exit(2)
		}
		col, err := replayOnce(specs, v, *parallel, sinkBuf.Bytes())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracereplay:", err)
			os.Exit(1)
		}
		byTool := col.LocationsByTool()
		names := make([]string, 0, len(byTool))
		for n := range byTool {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%-20s %10s\n", "tool", "locations")
		for _, n := range names {
			fmt.Printf("%-20s %10d\n", n, byTool[n])
		}
		fmt.Printf("%-20s %10d\n", "total", col.Locations())
		fmt.Printf("\n%d tool(s) analysed the trace concurrently over a SINGLE decode;\n", len(specs))
		if *parallel > 1 {
			fmt.Printf("the run was sharded across %d engine workers and the merged report is\n", *parallel)
			fmt.Println("byte-identical to the sequential single-pass result.")
		} else {
			fmt.Println("rerun with -parallel N to shard the same pass across engine workers.")
		}
		return
	}

	// Phase 2: replay the identical interleaving into each configuration,
	// sequentially or through the sharded engine.
	fmt.Printf("%-10s %10s\n", "config", "locations")
	for _, det := range harness.PaperConfigs() {
		var col *report.Collector
		if *parallel > 1 {
			eng, err := engine.New(engine.Options{
				Shards:   *parallel,
				Tools:    []trace.ToolSpec{lockset.Spec(det.Cfg)},
				Resolver: v, // resolver from the recording VM
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracereplay: engine:", err)
				os.Exit(1)
			}
			if _, err := eng.ReplayLog(bytes.NewReader(sinkBuf.Bytes())); err != nil {
				fmt.Fprintln(os.Stderr, "tracereplay: replay:", err)
				os.Exit(1)
			}
			if col, err = eng.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracereplay: engine:", err)
				os.Exit(1)
			}
		} else {
			col = report.NewCollector(v, nil) // resolver from the recording VM
			d := lockset.New(det.Cfg, col)
			if _, err := tracelog.Replay(bytes.NewReader(sinkBuf.Bytes()), d); err != nil {
				fmt.Fprintln(os.Stderr, "tracereplay: replay:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("%-10s %10d\n", det.Name, col.Locations())
	}
	fmt.Println("\nall three configurations analysed the SAME interleaving — the offline")
	fmt.Println("capability the paper notes on-the-fly checkers give up (§2.2).")
	if *parallel > 1 {
		fmt.Printf("each replay ran sharded across %d engine workers; the merged reports are\n", *parallel)
		fmt.Println("deterministic and identical to a sequential replay of the same log.")
	}
}

// replayOnce streams one decode of the log through all specs, sequentially
// or sharded, and returns the merged collector.
func replayOnce(specs []trace.ToolSpec, res trace.Resolver, parallel int, log []byte) (*report.Collector, error) {
	opt := engine.Options{Tools: specs, Resolver: res}
	if parallel > 1 {
		opt.Shards = parallel
		eng, err := engine.New(opt)
		if err != nil {
			return nil, err
		}
		if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
			return nil, err
		}
		return eng.Close()
	}
	seq, err := engine.NewSequential(opt)
	if err != nil {
		return nil, err
	}
	if _, err := seq.ReplayLog(bytes.NewReader(log)); err != nil {
		return nil, err
	}
	return seq.Close()
}
