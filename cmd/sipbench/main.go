// Command sipbench regenerates the paper's evaluation tables: the Fig. 6
// table of reported locations per test case and detector configuration, the
// Fig. 5 decomposition into warning families, and the §1 headline reduction
// range.
//
// Usage:
//
//	sipbench                 # Fig. 6 table (thread-per-request, paper bugs)
//	sipbench -decompose      # Fig. 5 family decomposition
//	sipbench -case T4        # single test case, all configurations, with families
//	sipbench -pool           # run under the Fig. 11 thread-pool pattern
//	sipbench -seed 7         # different schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/harness"
	"repro/internal/sip"
	"repro/internal/sipp"
)

func main() {
	var (
		decompose = flag.Bool("decompose", false, "print the Fig. 5 family decomposition instead of the Fig. 6 table")
		caseID    = flag.String("case", "", "run a single test case (T1..T8) and print per-family counts")
		pool      = flag.Bool("pool", false, "use the thread-pool pattern (Fig. 11) instead of thread-per-request")
		seed      = flag.Int64("seed", 1, "scheduler seed")
		quantum   = flag.Int("quantum", 3, "scheduling quantum")
		supFile   = flag.String("suppressions", "", "apply a Valgrind-style suppression file (§2.3.1); use 'builtin' for the stock libstdc++/destructor rules")
	)
	flag.Parse()

	opt := harness.DefaultRunOptions()
	opt.Seed = *seed
	opt.Quantum = *quantum
	if *pool {
		opt.Pattern = sip.ThreadPool
	}
	switch *supFile {
	case "":
	case "builtin":
		opt.Suppressions = harness.HelgrindSuppressions
	default:
		data, err := os.ReadFile(*supFile)
		exitOn(err)
		opt.Suppressions = string(data)
	}

	switch {
	case *caseID != "":
		runSingle(*caseID, opt)
	case *decompose:
		rows, err := harness.Figure5(opt)
		exitOn(err)
		fmt.Println("Figure 5 — decomposition of Original-configuration locations:")
		fmt.Print(harness.FormatFigure5(rows))
	default:
		rows, _, err := harness.Figure6(opt)
		exitOn(err)
		fmt.Println("Figure 6 — reported possible data race locations:")
		fmt.Print(harness.FormatFigure6(rows))
		lo, hi := harness.ReductionRange(rows)
		fmt.Printf("\nfalse positives removed by the improvements: %.0f%% .. %.0f%% (paper: 65%%..81%%)\n", lo, hi)
	}
}

func runSingle(id string, opt harness.RunOptions) {
	tc, ok := sipp.CaseByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "sipbench: unknown test case %q (want T1..T8)\n", id)
		os.Exit(2)
	}
	for _, det := range harness.PaperConfigs() {
		res, err := harness.RunCase(tc, det, opt)
		exitOn(err)
		fmt.Printf("%s under %-9s: %3d locations (%d requests handled, %d guest ops)\n",
			tc.ID, det.Name, res.Locations, res.Handled, res.Steps)
		fams := make([]string, 0, len(res.ByFamily))
		for f := range res.ByFamily {
			fams = append(fams, string(f))
		}
		sort.Strings(fams)
		for _, f := range fams {
			fmt.Printf("    %-18s %d\n", f, res.ByFamily[harness.Family(f)])
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sipbench:", err)
		os.Exit(1)
	}
}
