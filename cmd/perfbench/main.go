// Command perfbench regenerates the §4.5 overhead comparison: the same
// workload natively, on the bare VM, and on the VM with each analysis
// attached. It also measures offline replay throughput — sequential versus
// the sharded parallel engine — per detector configuration, and the
// one-decode comparative mode: all three paper configurations (plus any
// extra -tools) analysed concurrently in a single pass over the trace,
// instead of replaying it once per configuration.
//
// With -ingest it additionally measures the live trace-ingest daemon
// (internal/ingest): the recorded workload trace streamed over real loopback
// connections into a private server, at each -ingest-sessions concurrency
// level (default 1, 8 and 64 concurrent sessions), reporting aggregate
// events/sec per level.
//
// With -json the results are emitted as a machine-readable document
// (harness.BenchDoc: ns/event per detector config, sequential vs -parallel
// N), so successive PRs can track the performance trajectory in
// BENCH_*.json files. The document records GOMAXPROCS, NumCPU and the shard
// count, so a trajectory measured on a 1-CPU container is distinguishable
// from a multi-core run. -alloc adds allocs/event and bytes/event to every
// replay row. -check FILE validates an existing document against the
// current schema and exits — the CI smoke for committed BENCH files.
//
// Usage:
//
//	perfbench
//	perfbench -threads 8 -iters 5000
//	perfbench -json -alloc -parallel 4 -ingest > BENCH_$(date +%F).json
//	perfbench -check BENCH_2026-08-07.json
//	perfbench -compare BENCH_2026-08-07.json BENCH_2026-09-01.json
//	perfbench -tooltime
//	perfbench -tools lockset,djit,deadlock,memcheck,highlevel
//	perfbench -ingest -ingest-sessions 1,8,64
//
// -compare OLD.json NEW.json prints a benchstat-style delta table between two
// BENCH documents and exits non-zero if sequential replay allocs/event
// regressed by more than -compare-tolerance (default 10%) — the CI
// bench-regression gate. -tooltime brackets every delivery in the one-pass
// comparative mode with clock reads and prints a per-tool time attribution
// table (residual = decode + dispatch).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	var (
		threads        = flag.Int("threads", 4, "guest worker threads")
		iters          = flag.Int("iters", 2000, "iterations per thread")
		slots          = flag.Int("slots", 64, "shared table slots")
		seed           = flag.Int64("seed", 1, "scheduler seed")
		repeat         = flag.Int("repeat", 3, "repetitions (best run reported)")
		parallel       = flag.Int("parallel", 4, "engine shards for the replay measurements")
		tools          = flag.String("tools", "", "extra tools to add to the one-pass comparative replay (comma-separated, e.g. djit,deadlock,memcheck; 'all' for every tool)")
		asJSON         = flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
		alloc          = flag.Bool("alloc", false, "also measure allocs/event and bytes/event per replay measurement")
		check          = flag.String("check", "", "validate an existing BENCH JSON file against the current schema and exit")
		compare        = flag.Bool("compare", false, "compare two BENCH JSON files (old new) and exit; non-zero on allocs/event regression beyond -compare-tolerance")
		compareTol     = flag.Float64("compare-tolerance", 0.10, "relative sequential-replay allocs/event regression tolerated by -compare")
		toolTime       = flag.Bool("tooltime", false, "measure per-tool wall time in the one-pass comparative mode (adds two clock reads per delivery)")
		ingest         = flag.Bool("ingest", false, "also measure live-ingest throughput through the trace-ingest server")
		ingestSessions = flag.String("ingest-sessions", "1,8,64", "comma-separated concurrent session counts for -ingest")
		ingestShards   = flag.Int("ingest-shards", 1, "per-session engine shards for -ingest (1 = sequential per session)")
		overload       = flag.Bool("overload", false, "also measure the overload workload: a flood of sessions against a small server with bounded admission and adaptive degradation")
		overloadN      = flag.Int("overload-sessions", 64, "concurrent sessions in the -overload flood")
		overloadSlots  = flag.Int("overload-max", 4, "server MaxSessions for the -overload flood")
	)
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "perfbench: -compare needs exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		oldDoc, err := loadBenchDoc(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		newDoc, err := loadBenchDoc(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		cmp := harness.CompareBenchDocs(oldDoc, newDoc)
		fmt.Print(cmp.Table)
		if cmp.WorstSeqAllocRegress > *compareTol {
			fmt.Fprintf(os.Stderr, "perfbench: sequential replay allocs/event regressed %.1f%% (tolerance %.1f%%)\n",
				cmp.WorstSeqAllocRegress*100, *compareTol*100)
			os.Exit(1)
		}
		return
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		doc, err := harness.ParseBenchDoc(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (schema %d, %d replay rows, %d one-pass rows, %d ingest levels)\n",
			*check, doc.Schema, len(doc.Replay), len(doc.OnePass), len(doc.Ingest))
		return
	}

	// The §4.5 overhead matrix keeps the classic single-block table so its
	// ratios stay comparable with earlier measurements; only the replay
	// benchmark spreads the table across blocks to give the engine's shard
	// hash fan-out.
	w := harness.PerfWorkload{Threads: *threads, Iters: *iters, Slots: *slots, Seed: *seed}
	wr := w
	wr.Blocks = *slots
	wr.MeasureAllocs = *alloc
	wr.ToolTime = *toolTime
	best := map[harness.PerfMode]harness.PerfResult{}
	for r := 0; r < *repeat; r++ {
		results, err := w.Overhead()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		for _, res := range results {
			if prev, ok := best[res.Mode]; !ok || res.Duration < prev.Duration {
				best[res.Mode] = res
			}
		}
	}
	ordered := []harness.PerfMode{
		harness.PerfNative, harness.PerfVM, harness.PerfVMLockset,
		harness.PerfVMLocksetDR, harness.PerfVMDJIT,
	}
	out := make([]harness.PerfResult, 0, len(ordered))
	for _, m := range ordered {
		out = append(out, best[m])
	}

	// The replay benchmarks analyse a recorded trace, and recording is
	// seeded-deterministic: record once, replay every repetition from the
	// same log instead of re-executing the guest per repeat.
	rvm, rlog, err := wr.RecordTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: record:", err)
		os.Exit(1)
	}

	// ReplayBench returns rows in a fixed order (config x mode), so best-of
	// selection aligns by index.
	var replay []harness.ReplayResult
	for r := 0; r < *repeat; r++ {
		rr, err := wr.ReplayBenchLog(rvm, rlog, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: replay:", err)
			os.Exit(1)
		}
		if replay == nil {
			replay = rr
			continue
		}
		for i, res := range rr {
			if res.NsTotal < replay[i].NsTotal {
				replay[i] = res
			}
		}
	}

	// One-decode comparative mode: the three paper configurations — plus any
	// extra -tools — registered side by side, so the trace is decoded once
	// instead of once per configuration.
	specs := harness.PaperConfigSpecs()
	if *tools != "" {
		extra, err := core.Options{}.ParseTools(*tools)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		specs = append(specs, extra...)
	}
	var onePass []harness.OnePassResult
	for r := 0; r < *repeat; r++ {
		op, err := wr.OnePassReplayLog(rvm, rlog, *parallel, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: one-pass:", err)
			os.Exit(1)
		}
		if onePass == nil {
			onePass = op
			continue
		}
		for i, res := range op {
			if res.NsTotal < onePass[i].NsTotal {
				onePass[i] = res
			}
		}
	}

	// Live-ingest throughput: the same recorded trace streamed concurrently
	// into a private ingest server, once per session count. The full
	// six-tool registry runs per session, like a production daemon would.
	var ingestRows []harness.IngestResult
	if *ingest {
		counts, err := parseSessionCounts(*ingestSessions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		ingestTools, err := (core.Options{}).ToolFactory("all")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		ingestRows, err = harness.IngestBenchLog(rlog, ingestTools, *ingestShards, counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: ingest:", err)
			os.Exit(1)
		}
	}

	// Overload workload: flood a deliberately small server and measure the
	// degradation — completions vs busy rejections, rejection latency, shed
	// coverage. Admission is bounded tightly so the flood actually rejects.
	var overloadRows []harness.OverloadResult
	if *overload {
		overloadTools, err := (core.Options{}).ToolFactory("all")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		row, err := harness.OverloadBenchLog(rlog, overloadTools, *overloadN, *overloadSlots, 250*time.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: overload:", err)
			os.Exit(1)
		}
		overloadRows = append(overloadRows, row)
	}

	if *asJSON {
		doc := harness.BenchDoc{
			Schema: harness.BenchSchemaVersion, Date: time.Now().UTC().Format("2006-01-02"),
			Threads: *threads, Iters: *iters, Slots: *slots, Blocks: wr.Blocks,
			Seed: *seed, GoMaxProc: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Shards: *parallel,
			Replay: replay, OnePass: onePass, Ingest: ingestRows,
			Overload: overloadRows,
		}
		for _, r := range out {
			row := harness.OverheadRow{Mode: string(r.Mode), NsTotal: r.Duration.Nanoseconds(), Steps: r.Steps, Ops: r.Ops}
			if r.Ops > 0 {
				row.NsPerOp = float64(r.Duration.Nanoseconds()) / float64(r.Ops)
			}
			doc.Overhead = append(doc.Overhead, row)
		}
		if err := doc.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("§4.5 overhead, %d threads x %d iterations (best of %d):\n\n", *threads, *iters, *repeat)
	fmt.Print(harness.FormatOverhead(out))
	fmt.Printf("\noffline replay, ns/event (best of %d, %d events):\n\n", *repeat, replay[0].Events)
	if *alloc {
		fmt.Printf("%-10s %14s %14s %16s %16s\n", "config", "sequential", replay[1].Mode, "seq allocs/ev", "par allocs/ev")
	} else {
		fmt.Printf("%-10s %14s %14s\n", "config", "sequential", replay[1].Mode)
	}
	var seqTotal int64
	for i := 0; i < len(replay); i += 2 {
		if *alloc {
			fmt.Printf("%-10s %14.1f %14.1f %16.3f %16.3f\n", replay[i].Config,
				replay[i].NsPerEvt, replay[i+1].NsPerEvt, replay[i].AllocsPerEvt, replay[i+1].AllocsPerEvt)
		} else {
			fmt.Printf("%-10s %14.1f %14.1f\n", replay[i].Config, replay[i].NsPerEvt, replay[i+1].NsPerEvt)
		}
		seqTotal += replay[i].NsTotal
	}
	fmt.Printf("\none-decode comparative mode: %d tool(s) in one pass (%d events):\n\n", len(specs), onePass[0].Events)
	fmt.Printf("%-14s %14s %14s\n", "mode", "ns/event", "locations")
	for _, op := range onePass {
		names := make([]string, 0, len(op.Locations))
		for n := range op.Locations {
			names = append(names, n)
		}
		sort.Strings(names)
		locs := ""
		for i, n := range names {
			if i > 0 {
				locs += " "
			}
			locs += fmt.Sprintf("%s=%d", n, op.Locations[n])
		}
		fmt.Printf("%-14s %14.1f   %s\n", op.Mode, op.NsPerEvt, locs)
	}
	if *toolTime {
		for _, op := range onePass {
			if len(op.ToolNs) == 0 {
				continue
			}
			names := make([]string, 0, len(op.ToolNs))
			var toolTotal int64
			for n, ns := range op.ToolNs {
				names = append(names, n)
				toolTotal += ns
			}
			sort.Strings(names)
			fmt.Printf("\nper-tool time, %s mode (%d events):\n\n", op.Mode, op.Events)
			fmt.Printf("%-14s %14s %12s\n", "tool", "ns/event", "share")
			for _, n := range names {
				fmt.Printf("%-14s %14.1f %11.1f%%\n", n,
					float64(op.ToolNs[n])/float64(op.Events), float64(op.ToolNs[n])/float64(op.NsTotal)*100)
			}
			if resid := op.NsTotal - toolTotal; resid > 0 {
				fmt.Printf("%-14s %14.1f %11.1f%%   (decode + dispatch)\n", "residual",
					float64(resid)/float64(op.Events), float64(resid)/float64(op.NsTotal)*100)
			}
		}
	}
	if *tools == "" {
		// Only apples to apples: with extra -tools the one-pass run analyses
		// more than the three per-config replays do.
		fmt.Printf("\nvs %d per-config sequential replays: %.2fx the decode+analysis time in one pass\n",
			len(specs), float64(onePass[0].NsTotal)/float64(seqTotal))
	}
	if len(ingestRows) > 0 {
		fmt.Printf("\nlive ingest (all six tools per session, %d shard(s)/session, %d events/trace):\n\n",
			ingestRows[0].Shards, ingestRows[0].Events/int64(ingestRows[0].Sessions))
		fmt.Printf("%-10s %14s %14s %14s\n", "sessions", "events", "wall time", "events/sec")
		for _, r := range ingestRows {
			fmt.Printf("%-10d %14d %14s %14.0f\n", r.Sessions, r.Events,
				time.Duration(r.NsTotal).Round(time.Millisecond).String(), r.EventsPerSec)
		}
	}
	for _, r := range overloadRows {
		fmt.Printf("\noverload flood (%d sessions vs %d slots, sampling + ladder on):\n\n", r.Sessions, r.MaxSessions)
		fmt.Printf("  completed=%d rejected=%d degraded=%d sampled-out=%d wall=%s worst-rejection=%s\n",
			r.Completed, r.Rejected, r.DegradedSessions, r.SampledOut,
			time.Duration(r.NsTotal).Round(time.Millisecond),
			time.Duration(r.MaxRejectNs).Round(time.Millisecond))
	}
	if runtime.GOMAXPROCS(0) < *parallel {
		fmt.Printf("\nnote: GOMAXPROCS=%d < %d shards — the parallel columns measure engine\n",
			runtime.GOMAXPROCS(0), *parallel)
		fmt.Println("overhead, not speedup; run on a multi-core host for the scaling numbers.")
	}
}

// loadBenchDoc reads and schema-validates one BENCH JSON file.
func loadBenchDoc(path string) (*harness.BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := harness.ParseBenchDoc(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// parseSessionCounts parses "1,8,64" into ints.
func parseSessionCounts(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -ingest-sessions entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ingest-sessions")
	}
	return out, nil
}
