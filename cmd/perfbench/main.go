// Command perfbench regenerates the §4.5 overhead comparison: the same
// workload natively, on the bare VM, and on the VM with each analysis
// attached. It also measures offline replay throughput — sequential versus
// the sharded parallel engine — per detector configuration.
//
// With -json the results are emitted as a machine-readable document
// (ns/event per detector config, sequential vs -parallel N), so successive
// PRs can track the performance trajectory in BENCH_*.json files.
//
// Usage:
//
//	perfbench
//	perfbench -threads 8 -iters 5000
//	perfbench -json -parallel 4 > BENCH_replay.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/harness"
)

// benchDoc is the -json output schema.
type benchDoc struct {
	Threads   int                    `json:"threads"`
	Iters     int                    `json:"iters"`
	Slots     int                    `json:"slots"`
	Blocks    int                    `json:"blocks"`
	Seed      int64                  `json:"seed"`
	GoMaxProc int                    `json:"gomaxprocs"`
	Overhead  []overheadJSON         `json:"overhead"`
	Replay    []harness.ReplayResult `json:"replay"`
}

// overheadJSON is one §4.5 matrix row in machine-readable form.
type overheadJSON struct {
	Mode    string  `json:"mode"`
	NsTotal int64   `json:"ns_total"`
	Steps   int64   `json:"steps"`
	Ops     int64   `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	var (
		threads  = flag.Int("threads", 4, "guest worker threads")
		iters    = flag.Int("iters", 2000, "iterations per thread")
		slots    = flag.Int("slots", 64, "shared table slots")
		seed     = flag.Int64("seed", 1, "scheduler seed")
		repeat   = flag.Int("repeat", 3, "repetitions (best run reported)")
		parallel = flag.Int("parallel", 4, "engine shards for the replay measurement")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	)
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	// The §4.5 overhead matrix keeps the classic single-block table so its
	// ratios stay comparable with earlier measurements; only the replay
	// benchmark spreads the table across blocks to give the engine's shard
	// hash fan-out.
	w := harness.PerfWorkload{Threads: *threads, Iters: *iters, Slots: *slots, Seed: *seed}
	wr := w
	wr.Blocks = *slots
	best := map[harness.PerfMode]harness.PerfResult{}
	for r := 0; r < *repeat; r++ {
		results, err := w.Overhead()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		for _, res := range results {
			if prev, ok := best[res.Mode]; !ok || res.Duration < prev.Duration {
				best[res.Mode] = res
			}
		}
	}
	ordered := []harness.PerfMode{
		harness.PerfNative, harness.PerfVM, harness.PerfVMLockset,
		harness.PerfVMLocksetDR, harness.PerfVMDJIT,
	}
	out := make([]harness.PerfResult, 0, len(ordered))
	for _, m := range ordered {
		out = append(out, best[m])
	}

	// ReplayBench returns rows in a fixed order (config x mode), so best-of
	// selection aligns by index.
	var replay []harness.ReplayResult
	for r := 0; r < *repeat; r++ {
		rr, err := wr.ReplayBench(*parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: replay:", err)
			os.Exit(1)
		}
		if replay == nil {
			replay = rr
			continue
		}
		for i, res := range rr {
			if res.NsTotal < replay[i].NsTotal {
				replay[i] = res
			}
		}
	}

	if *asJSON {
		doc := benchDoc{
			Threads: *threads, Iters: *iters, Slots: *slots, Blocks: wr.Blocks,
			Seed: *seed, GoMaxProc: runtime.GOMAXPROCS(0),
			Replay: replay,
		}
		for _, r := range out {
			row := overheadJSON{Mode: string(r.Mode), NsTotal: r.Duration.Nanoseconds(), Steps: r.Steps, Ops: r.Ops}
			if r.Ops > 0 {
				row.NsPerOp = float64(r.Duration.Nanoseconds()) / float64(r.Ops)
			}
			doc.Overhead = append(doc.Overhead, row)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("§4.5 overhead, %d threads x %d iterations (best of %d):\n\n", *threads, *iters, *repeat)
	fmt.Print(harness.FormatOverhead(out))
	fmt.Printf("\noffline replay, ns/event (best of %d, %d events):\n\n", *repeat, replay[0].Events)
	fmt.Printf("%-10s %14s %14s\n", "config", "sequential", replay[1].Mode)
	for i := 0; i < len(replay); i += 2 {
		fmt.Printf("%-10s %14.1f %14.1f\n", replay[i].Config, replay[i].NsPerEvt, replay[i+1].NsPerEvt)
	}
	if runtime.GOMAXPROCS(0) < *parallel {
		fmt.Printf("\nnote: GOMAXPROCS=%d < %d shards — the parallel column measures engine\n",
			runtime.GOMAXPROCS(0), *parallel)
		fmt.Println("overhead, not speedup; run on a multi-core host for the scaling numbers.")
	}
}
