// Command perfbench regenerates the §4.5 overhead comparison: the same
// workload natively, on the bare VM, and on the VM with each analysis
// attached.
//
// Usage:
//
//	perfbench
//	perfbench -threads 8 -iters 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		threads = flag.Int("threads", 4, "guest worker threads")
		iters   = flag.Int("iters", 2000, "iterations per thread")
		slots   = flag.Int("slots", 64, "shared table slots")
		seed    = flag.Int64("seed", 1, "scheduler seed")
		repeat  = flag.Int("repeat", 3, "repetitions (best run reported)")
	)
	flag.Parse()

	w := harness.PerfWorkload{Threads: *threads, Iters: *iters, Slots: *slots, Seed: *seed}
	best := map[harness.PerfMode]harness.PerfResult{}
	for r := 0; r < *repeat; r++ {
		results, err := w.Overhead()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		for _, res := range results {
			if prev, ok := best[res.Mode]; !ok || res.Duration < prev.Duration {
				best[res.Mode] = res
			}
		}
	}
	ordered := []harness.PerfMode{
		harness.PerfNative, harness.PerfVM, harness.PerfVMLockset,
		harness.PerfVMLocksetDR, harness.PerfVMDJIT,
	}
	out := make([]harness.PerfResult, 0, len(ordered))
	for _, m := range ordered {
		out = append(out, best[m])
	}
	fmt.Printf("§4.5 overhead, %d threads x %d iterations (best of %d):\n\n", *threads, *iters, *repeat)
	fmt.Print(harness.FormatOverhead(out))
}
