// Package repro reproduces Mühlenfeld & Wotawa, "Fault Detection in
// Multi-Threaded C++ Server Applications" (ENTCS 174, 2007) as a Go library:
// an Eraser/Helgrind-style lock-set race detector with the paper's two
// improvements (corrected hardware bus-lock emulation and automatic
// destructor annotation), running on a deterministic virtual machine with a
// synthetic C++ runtime and SIP proxy server as the system under test.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured results. The public
// entry point is internal/core; the benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package repro
