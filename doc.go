// Package repro reproduces Mühlenfeld & Wotawa, "Fault Detection in
// Multi-Threaded C++ Server Applications" (ENTCS 174, 2007) as a Go library:
// an Eraser/Helgrind-style lock-set race detector with the paper's two
// improvements (corrected hardware bus-lock emulation and automatic
// destructor annotation), running on a deterministic virtual machine with a
// synthetic C++ runtime and SIP proxy server as the system under test.
//
// # Analysis pipelines
//
// Analysis runs in three modes, all producing identical reports:
//
//   - online: detectors attached to the VM observe events as the guest
//     executes (internal/core, the paper's on-the-fly mode);
//   - offline: a recorded binary trace (internal/tracelog) is replayed
//     sequentially into any set of detectors (§2.2 post-mortem mode);
//   - parallel: internal/engine shards the stream — recorded or live —
//     across N worker cores.
//
// # The parallel engine (internal/engine)
//
// The engine decodes the event stream once and partitions it by memory
// shard: each heap block is assigned to a shard by hashing its BlockID
// (trace.Shard), and every block-carrying event (access, alloc, free,
// client request) goes only to the owning shard's worker. Events that carry
// the happens-before structure — lock acquire/release, segment starts,
// higher-level synchronisation, thread lifecycle — are broadcast to all
// shards, so every worker maintains a complete picture of thread and lock
// state while owning only its slice of shadow memory. Events travel in
// bounded batched channels (backpressure, no unbounded queues), and each
// shard runs an independent detector instance behind a panic-isolating
// trace.SafeSink.
//
// Warnings accumulate in per-shard report.Collectors whose sites carry the
// global sequence number of their first occurrence; report.Merge folds
// duplicate sites (summing occurrence counts, keeping the earliest
// details) and orders the union by that sequence. The merged report is
// therefore deterministic — independent of goroutine scheduling — and
// byte-identical to what a sequential replay of the same stream produces.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured results. The public
// entry point is internal/core; the benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation, and
// internal/engine.BenchmarkParallelReplay tracks parallel replay throughput.
package repro
