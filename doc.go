// Package repro reproduces Mühlenfeld & Wotawa, "Fault Detection in
// Multi-Threaded C++ Server Applications" (ENTCS 174, 2007) as a Go library:
// an Eraser/Helgrind-style lock-set race detector with the paper's two
// improvements (corrected hardware bus-lock emulation and automatic
// destructor annotation), running on a deterministic virtual machine with a
// synthetic C++ runtime and SIP proxy server as the system under test.
//
// # Analysis pipelines
//
// Analysis runs in three modes, all producing byte-identical reports:
//
//   - online: the tool pipeline attached to the VM observes events as the
//     guest executes (internal/core, the paper's on-the-fly mode);
//   - offline: a recorded binary trace (internal/tracelog) is replayed into
//     the same pipeline post-mortem (§2.2);
//   - parallel: internal/engine shards the stream — recorded or live —
//     across N worker cores.
//
// # The tool registry
//
// Where the paper runs each analysis as a separate Valgrind tool — one
// execution per tool, and one replay per detector configuration — this
// reproduction registers any number of tools (trace.ToolSpec) and runs them
// all concurrently over a SINGLE pass of the event stream: several race
// detector configurations side by side, plus the lock-order deadlock
// detector, memcheck and the view-consistency checker. Each detector
// package exports a Spec constructor declaring its name and routing class;
// core.Options.Tools (or the -tools flag of racecheck, tracereplay and
// perfbench) selects the registry for a run.
//
// Every tool instance sits behind its own panic-isolating trace.SafeSink
// and writes to its own report.Collector, whose sites are stamped with the
// global sequence number of the event that produced them. At the end of the
// stream, end-of-phase passes (trace.Finisher) run, and report.Merge folds
// all collectors into one report ordered by global first-seen occurrence —
// across tools and, in the parallel mode, across shards.
//
// # The sharded engine (internal/engine)
//
// The engine decodes the event stream once, on the dispatcher goroutine,
// and fans it out to N shard workers over bounded batched channels
// (backpressure, no unbounded queues). How much of the stream a tool's
// instances see is the tool's routing class (trace.Routing), which encodes
// the soundness argument for parallelising it:
//
//   - block-routed (trace.RouteBlock — lockset, DJIT, hybrid, memcheck):
//     one instance per shard. Events naming a heap block (accesses, allocs,
//     frees, client requests) go only to the shard owning that block
//     (trace.Shard of its BlockID); synchronisation, segment and
//     thread-lifecycle events are broadcast to all shards. This is sound
//     because these tools keep their warning-producing shadow state per
//     block and warn only from block-carrying events, while their
//     thread/lock/segment state derives purely from broadcast events and
//     therefore evolves identically in every shard. Memcheck is the extreme
//     case: its whole state is the per-block freed flag, so it needs only
//     its own block's events.
//   - broadcast (trace.RouteBroadcast — deadlock): one pinned instance fed
//     the broadcast substream only. The lock-order graph is global — no
//     partition of it preserves cycles — but it is built exclusively from
//     acquire/contended/release events, which every shard observes in full
//     order anyway; the engine simply designates one home shard.
//   - single-shard (trace.RouteSingle — highlevel): one pinned instance fed
//     the complete stream; the engine additionally forwards every block
//     event to its home shard. View consistency correlates accesses to
//     different blocks made under one critical section, so neither a block
//     partition nor the broadcast substream suffices.
//
// The merged multi-tool report is deterministic — independent of goroutine
// scheduling and of the shard count — and byte-identical to the sequential
// single-pass pipeline (engine.Sequential) over the same stream, live or
// replayed. This invariant is tested for all tools at once, under all three
// paper configurations, at 1/4/8 shards.
//
// # The snapshot lifecycle
//
// Both pipelines additionally support mid-stream snapshots
// (engine.Pipeline.Snapshot): a non-perturbing checkpoint that returns the
// deterministic merged report of everything analysed so far while the stream
// keeps flowing. The sharded engine quiesces with a per-shard barrier — the
// dispatcher flushes its partial batches, sends a marker down every shard
// channel, and waits until every worker has drained its queue up to the
// marker and parked; each instance collector is then deep-copied through the
// trace.Snapshotter capability (report.Collector.Clone) and the workers
// resume. Because sites are ordered by first-seen sequence, a snapshot's
// site manifest (report.Collector.Manifest) is always a prefix-consistent
// subset of the final manifest (report.PrefixConsistent): same leading
// sites, counts not yet complete. Taking snapshots at any points never
// changes the final report — byte-identical to a snapshot-free run, pinned
// by TestSnapshotDeterminism for all six tools at 1/4/8 shards under -race.
// Finisher passes do not run at snapshots (they may mutate tool state), so
// end-of-stream-only warnings appear only in the final report.
//
// # Conformance scenarios (internal/scenario)
//
// The paper's evaluation seeds a handful of known bugs into one SIP server;
// internal/scenario generalises that into a generator: seeded random guest
// programs over the full VM API, each planting bugs from a fixed catalog
// with known ground truth —
//
//   - race-ww: concurrent unlocked writes (lockset + DJIT + hybrid)
//   - race-lockset-only: unlocked writes ordered by a semaphore handoff —
//     the lock-set detector must report, happens-before tools must NOT
//   - lost-signal: a condition-variable signal provably lost under every
//     schedule; the timed-out waiter then races the producer (all three)
//   - lock-order: an inverted acquisition order, serialised so the run
//     itself never deadlocks (deadlock tool)
//   - use-after-free / double-free (memcheck)
//   - highlevel-split: two fields updated as a unit by one thread and
//     field-by-field by another, fully locked (view-consistency checker)
//
// Every bug is constructed to be schedule-independent (its expected tools
// report it under EVERY scheduler seed), and every scenario has a bug-free
// control variant that must produce zero warnings. The conformance suite
// (internal/scenario/scenario_conformance_test.go) runs each scenario
// through all six tools under {sequential, 4-shard, 8-shard} × {live,
// offline-replay} across several scheduler seeds and asserts byte-identical
// reports across shapes, zero catalog false negatives and clean controls.
//
// cmd/scenariogen generates, describes and verifies scenarios; a committed
// golden corpus (internal/scenario/testdata/golden) pins the generator and
// the trace encoding, and seeds the tracelog decoder fuzz target. A
// conformance failure prints its generator and scheduler seeds; reproduce it
// with
//
//	go run ./cmd/scenariogen -seed <gen-seed> -sched <sched-seed> -report
//
// # The live trace-ingest server (internal/ingest)
//
// The paper's tools watched a long-running SIP server under production
// traffic; internal/ingest is that deployment shape. cmd/traced is a
// long-running daemon accepting many concurrent connections (unix socket or
// TCP), each carrying one length-framed trace stream; every connection
// becomes an independent session analysed by its own engine pipeline
// (engine.NewPipeline — sequential or sharded), so a session's report is
// byte-identical to an offline replay of the same trace.
//
//   - Framing (internal/tracelog frame layer): a framed stream is a 4-byte
//     magic plus [kind][uvarint length][payload] frames; the offline log
//     format is exactly the payload of events frames. An explicit end frame
//     marks the clean end — truncation anywhere else is io.ErrUnexpectedEOF,
//     hostile length claims are rejected before allocation, and
//     FuzzFramedStream covers the whole untrusted surface (metadata frames
//     included).
//   - Streaming resolver: metadata frames (tracelog.FrameMetadata) carry the
//     client's interned stack/block tables, interleaved anywhere in the
//     stream; the server accumulates them into a per-session
//     tracelog.TableResolver, so live reports resolve call stacks and block
//     provenance byte-identically to an offline replay holding the
//     recording VM. Sessions without metadata render unresolved, exactly as
//     before.
//   - Lifecycle: sessions move open → streaming → drained → reported, or
//     fail from any state (torn stream, tool panic, idle timeout, forced
//     shutdown); the registry retains terminal sessions for the
//     cross-session aggregate (per-tool warning counts, summed tool
//     summaries, and a report.Merge of every reported session), served to
//     "aggregate" query connections.
//   - Incremental reports: with Config.ReportInterval set, each streaming
//     session periodically takes an engine snapshot and stores the rendered
//     mid-stream report plus its site manifest; "session <name>" and
//     "snapshots <name>" query connections read them while the stream is
//     still flowing — the never-ending-stream reporting mode a production
//     daemon needs. Every snapshot manifest is prefix-consistent with the
//     session's final manifest, and the final report is unaffected.
//   - Retention: Config.RetainSessions bounds the registry of a long-lived
//     daemon. Beyond the bound, the oldest terminal sessions fold into a
//     running aggregate collector (counts, summaries and merged warnings
//     preserved exactly — folding is aggregate-preserving) and their
//     per-session state is evicted.
//   - Bounded memory: per session via the engine's bounded batch channels
//     (backpressure propagates to the socket and flow-controls the client),
//     across sessions via the MaxSessions slots plus the retention policy.
//     Config.IdleTimeout fails sessions whose clients stall, so they stop
//     holding slots.
//   - Shutdown flushes: in-flight sessions get a grace period to drain and
//     report, then are force-closed as failed — never silently dropped.
//   - Overload survival: admission is bounded — an optional token bucket
//     paces arrivals, the MaxSessions slot wait is queue-with-deadline and
//     always interruptible by shutdown, and refused connections get a typed
//     busy error (tracelog.ErrBusy) with a retry-after hint. Under pressure
//     a degradation ladder sheds auxiliary tools (never the paper's core
//     block-routed detectors) and an adaptive sampler drops a deterministic
//     per-block fraction of access events, with exact sampled-out counts
//     stamped into session reports and the aggregate; the retention fold
//     can cap per-site detail (Config.FoldSiteCap). At zero pressure every
//     mechanism is inert and reports stay byte-identical — see the README's
//     "Overload survival" section.
//
// cmd/traceload replays scenario corpora over N concurrent live sessions
// (with -verify pinning live == offline byte-identity against a real
// server, and pinning every server-side incremental snapshot as a
// prefix-consistent subset of the final report), optionally open-loop at a
// target events/sec with a queueing-delay summary (-rate); perfbench
// -ingest measures aggregate ingest throughput at 1/8/64 concurrent
// sessions. With -cooperative, traceload's sessions share one
// ingest.Backoff governor: busy rejections grow a common redial delay
// (seeded by the server's retry-after hint) and pace in-flight chunk
// writes, and successes decay it back to zero — a well-behaved client for
// an overloaded fleet.
//
// # Cross-session site identity and the router tier
//
// Warning sites are identified by report.SiteKey, a content-derived key
// (tool, kind, resolved stacks, block provenance — domain-separated, no
// process-local IDs), so the same bug observed in different sessions,
// different processes or different runs folds to ONE site under
// report.Merge, which is commutative and associative over those keys.
// That identity is what makes a multi-process deployment honest:
//
//	clients → traced -router → traced -backend (×N)
//
// ingest.Router (traced -router -backends <spec,...>) accepts ordinary
// client sessions and relays each one verbatim — frame by frame, no
// re-encode — to a backend analyzer chosen by rendezvous hashing over the
// session name, so one backend's death re-shards only its own names. The
// backend (traced -backend, ingest.Config.BackendMode) analyses the stream
// exactly as a standalone daemon would and returns its rendered report
// (relayed byte-identically to the client) plus a structured
// ingest.BackendResult — counters, summaries and the session's collector in
// wire form — which the router folds progressively into a fleet-wide
// aggregate. Because folding is a report.Merge over content-derived keys,
// the fleet aggregate is byte-identical to a single-process run of the same
// sessions, regardless of backend assignment or completion order. Failure
// stays contained and honest: a dead backend is marked and routed around
// (its in-flight sessions are counted lost and disclosed in the
// aggregate), while a backend's busy refusal is relayed to the client as
// the same typed tracelog.ErrBusy a standalone server sends — a refusal is
// an answer, not a death. The tier speaks three dedicated frame kinds
// (assign, backend-report, backend-stats) on the same TLF1 framing, fuzzed
// with the rest of the frame layer; see the README's "The router tier"
// section for the wire diagram and operational details.
//
// Dynamic counters that must survive sharding (memcheck's error and leak
// totals) flow through trace.Summarizer: the engine sums SummaryCounts per
// tool across shard instances, so core.Result.Summaries — and the ingest
// aggregate — report the same totals at every shard count.
//
// # Self-observability (internal/obs)
//
// internal/obs is a zero-dependency metrics registry (atomic counters,
// gauges, fixed-bucket histograms, labelled vectors) rendering a
// deterministic Prometheus text snapshot. engine.NewMetrics and
// ingest.Config.Metrics thread it through the hot paths allocation-free
// (batched event counting, pre-resolved labelled series); instrumentation
// never touches collectors or tool state, so reports are byte-identical
// with metrics on or off (TestEngineMetricsConformance, TestObsConformance).
// traced exposes the registry via the "stats" query, -http (/metrics,
// /healthz, net/http/pprof) and -stats-interval; see the README's
// "Observability" section for the metric catalog.
//
// # The zero-allocation hot path
//
// Steady-state decode and dispatch allocate nothing per event: the decoder
// reuses fixed field scratch, a reused tag buffer and a chunked block slab
// (freed descriptors are evicted and recycled, bounding the block table by
// the live set); the engine pools dispatch batches with per-batch
// segment-edge arenas; and allocation tags plus metadata strings are
// canonicalised in internal/intern's process-wide table, with identical
// metadata frame payloads content-hash deduped so concurrent sessions from
// one binary share one table copy. The price is a copy-on-retain contract:
// a decoded Event.Segment.In is valid only until the next Decoder.Next.
//
// The detectors follow the same discipline: the block-routed tools keep
// their shadow state in flat slices over dense-remapped IDs (trace.Dense)
// with slab-backed per-block arrays (trace.Slab) recycled on free, DJIT and
// hybrid take FastTrack-style same-epoch fast paths on repeated accesses
// (skipping state stores, never race checks), and lockset.SetTable memoises
// lock-set transitions so the canonical-set probe runs once per new edge,
// not once per event. The whole layout change is pinned byte-exact by
// TestGoldenReportDigests against report digests committed before it.
// TestZeroAlloc* budget tests pin the allocation claims; BENCH_<date>.json
// files at the repo root record the ns/event and allocs/event trajectory
// (harness.BenchDoc, regenerated by perfbench -json -alloc, diffed by
// perfbench -compare — also CI's bench-regression gate). See the README's
// "Performance" section for the full architecture.
//
// See README.md for the architecture overview. The public entry point is
// internal/core; the benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation, and internal/engine's benchmarks track
// replay throughput.
package repro
